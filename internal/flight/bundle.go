package flight

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// SchemaV1 identifies the forensic-bundle JSON layout. Consumers (vp-load
// -verify, the CI forensics job) match it exactly before trusting any field.
const SchemaV1 = "vpdift.forensics/v1"

// memHalo is how many bytes of context a memory window extends on each side
// of a touched address.
const memHalo = 64

// memWindowCap bounds how many merged memory windows a bundle carries, so a
// window full of scattered accesses cannot balloon the artifact.
const memWindowCap = 32

// Bundle is a self-contained forensic artifact: everything needed to
// explain a verdict without re-running the simulation. Addresses and words
// are hex strings ("0x%08x") so the JSON reads like a debugger transcript.
type Bundle struct {
	Schema    string `json:"schema"`
	Reason    string `json:"reason"` // "violation", "fault", "horizon", "snapshot", ...
	Version   string `json:"version"`
	GoVersion string `json:"go_version,omitempty"`

	SimNs    uint64 `json:"sim_time_ns"`
	Instret  uint64 `json:"instret"`
	PC       string `json:"pc"`
	Exited   bool   `json:"exited"`
	ExitCode uint32 `json:"exit_code"`

	Policy    *PolicyInfo    `json:"policy,omitempty"`
	Violation *ViolationInfo `json:"violation,omitempty"`
	Fault     *FaultInfo     `json:"fault,omitempty"`

	Regs  []RegState  `json:"regs"`
	Trace []TraceRec  `json:"trace"`
	Mem   []MemWindow `json:"mem,omitempty"`

	Captured uint64 `json:"captured"`
	Dropped  uint64 `json:"dropped"`

	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

// PolicyInfo identifies the information-flow policy the run enforced.
type PolicyInfo struct {
	Classes []string `json:"classes"`
	Default string   `json:"default"`
	Lattice string   `json:"lattice,omitempty"`
}

// ViolationInfo is the rendered terminal policy violation.
type ViolationInfo struct {
	Kind       string   `json:"kind"`
	Have       string   `json:"have"`
	Required   string   `json:"required"`
	PC         string   `json:"pc"`
	Addr       string   `json:"addr,omitempty"`
	Value      string   `json:"value,omitempty"`
	Port       string   `json:"port,omitempty"`
	Message    string   `json:"message"`
	Provenance []string `json:"provenance,omitempty"`
}

// FaultInfo is the rendered terminal guest fault.
type FaultInfo struct {
	Cause string `json:"cause"`
	PC    string `json:"pc"`
	Addr  string `json:"addr,omitempty"`
}

// RegState is one architectural register with its security tag (VP+; the
// baseline VP leaves Class empty and Tag zero).
type RegState struct {
	Name  string `json:"name"`
	Value string `json:"value"`
	Tag   uint8  `json:"tag"`
	Class string `json:"class,omitempty"`
}

// TraceRec is one rendered flight record.
type TraceRec struct {
	Seq     uint64 `json:"seq"` // instruction index at capture
	Kind    string `json:"kind"`
	PC      string `json:"pc,omitempty"`
	Insn    string `json:"insn,omitempty"`
	Disasm  string `json:"disasm,omitempty"`
	Addr    string `json:"addr,omitempty"`
	Note    string `json:"note,omitempty"` // rendered mark detail
	Taken   bool   `json:"taken,omitempty"`
	TaintRd bool   `json:"taint_rd,omitempty"`
}

// MemWindow is a hexdump of RAM around an address the trace window touched;
// Tags carries the per-byte security tags on the VP+.
type MemWindow struct {
	Start string `json:"start"`
	Data  string `json:"data"`
	Tags  string `json:"tags,omitempty"`
}

// Hex32 renders a 32-bit value the way every bundle field does.
func Hex32(v uint32) string { return fmt.Sprintf("0x%08x", v) }

// Snapshot carries the platform state the bundle builder needs. The
// function fields keep this package free of architecture imports: the
// platform passes its disassembler and a RAM reader instead of its types.
type Snapshot struct {
	Reason    string
	Version   string
	GoVersion string

	SimNs    uint64
	Instret  uint64
	PC       uint32
	Exited   bool
	ExitCode uint32

	Policy    *PolicyInfo
	Violation *ViolationInfo
	Fault     *FaultInfo

	Regs [32]RegState

	// RAMBase/RAMSize bound the memory windows; Mem copies size bytes of
	// RAM values (and tags, when tracked — nil otherwise) at a bus address
	// within those bounds.
	RAMBase uint32
	RAMSize uint32
	Mem     func(addr, size uint32) (data, tags []byte)

	// Disasm renders the instruction word w fetched from pc.
	Disasm func(w, pc uint32) string

	Metrics map[string]uint64
}

// Bundle freezes the recorder's current window into a forensic bundle and
// counts the emission.
func (r *Recorder) Bundle(s *Snapshot) *Bundle {
	r.bundles++
	b := &Bundle{
		Schema:    SchemaV1,
		Reason:    s.Reason,
		Version:   s.Version,
		GoVersion: s.GoVersion,
		SimNs:     s.SimNs,
		Instret:   s.Instret,
		PC:        Hex32(s.PC),
		Exited:    s.Exited,
		ExitCode:  s.ExitCode,
		Policy:    s.Policy,
		Violation: s.Violation,
		Fault:     s.Fault,
		Regs:      append([]RegState(nil), s.Regs[:]...),
		Captured:  r.Captured(),
		Dropped:   r.Dropped(),
		Metrics:   s.Metrics,
	}

	window := r.Window()
	b.Trace = make([]TraceRec, 0, len(window))
	var touched []uint32
	for _, rec := range window {
		t := TraceRec{Seq: rec.Time}
		switch rec.Kind {
		case KindRetire:
			t.Kind = "retire"
			t.PC = Hex32(rec.PC)
			t.Insn = Hex32(rec.Insn)
			if s.Disasm != nil {
				t.Disasm = s.Disasm(rec.Insn, rec.PC)
			}
			if rec.Flags&(FlagLoad|FlagStore) != 0 {
				t.Addr = Hex32(rec.Addr)
				touched = append(touched, rec.Addr)
			}
			t.Taken = rec.Flags&FlagTaken != 0
			t.TaintRd = rec.Flags&FlagTaintRd != 0
		case KindIRQ:
			t.Kind = "irq"
			t.Note = fmt.Sprintf("irq line 0x%x raised", rec.Aux)
		case KindTrap:
			t.Kind = "trap"
			t.PC = Hex32(rec.PC)
			t.Note = fmt.Sprintf("trap cause 0x%08x tval 0x%08x", rec.Insn, rec.Addr)
		case KindBus:
			t.Kind = "bus"
			t.Addr = Hex32(rec.Addr)
			dir := "read"
			if rec.Flags&FlagStore != 0 {
				dir = "write"
			}
			name := r.NameOf(rec.Aux)
			if name == "" {
				name = "unmapped"
			}
			t.Note = fmt.Sprintf("bus %s %s %dB", name, dir, rec.Insn)
		case KindFault:
			t.Kind = "fault"
			t.PC = Hex32(rec.PC)
			t.Insn = Hex32(rec.Insn)
			if s.Disasm != nil && rec.Insn != 0 {
				t.Disasm = s.Disasm(rec.Insn, rec.PC)
			}
			if rec.Addr != 0 {
				t.Addr = Hex32(rec.Addr)
				touched = append(touched, rec.Addr)
			}
		case KindViolation:
			t.Kind = "violation"
			t.PC = Hex32(rec.PC)
			t.Insn = Hex32(rec.Insn)
			if s.Disasm != nil && rec.Insn != 0 {
				t.Disasm = s.Disasm(rec.Insn, rec.PC)
			}
			if rec.Addr != 0 {
				t.Addr = Hex32(rec.Addr)
				touched = append(touched, rec.Addr)
			}
		default:
			t.Kind = "mark"
			t.Note = r.NameOf(rec.Aux)
		}
		b.Trace = append(b.Trace, t)
	}

	if s.Mem != nil && s.RAMSize > 0 {
		b.Mem = buildMemWindows(s, touched)
	}
	return b
}

// buildMemWindows merges ±memHalo windows around every touched RAM address
// and hex-dumps each through the snapshot's RAM reader.
func buildMemWindows(s *Snapshot, touched []uint32) []MemWindow {
	type span struct{ lo, hi uint64 }
	ramLo := uint64(s.RAMBase)
	ramHi := ramLo + uint64(s.RAMSize)
	spans := make([]span, 0, len(touched))
	for _, a := range touched {
		lo, hi := uint64(a), uint64(a)+1
		if lo < ramLo || lo >= ramHi {
			continue // MMIO and out-of-RAM addresses have no dumpable bytes
		}
		if lo-ramLo >= memHalo {
			lo -= memHalo
		} else {
			lo = ramLo
		}
		hi += memHalo
		if hi > ramHi {
			hi = ramHi
		}
		spans = append(spans, span{lo, hi})
	}
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	merged := spans[:1]
	for _, sp := range spans[1:] {
		if last := &merged[len(merged)-1]; sp.lo <= last.hi {
			if sp.hi > last.hi {
				last.hi = sp.hi
			}
		} else {
			merged = append(merged, sp)
		}
	}
	if len(merged) > memWindowCap {
		merged = merged[:memWindowCap]
	}
	out := make([]MemWindow, 0, len(merged))
	for _, sp := range merged {
		data, tags := s.Mem(uint32(sp.lo), uint32(sp.hi-sp.lo))
		if data == nil {
			continue
		}
		w := MemWindow{Start: Hex32(uint32(sp.lo)), Data: hex.EncodeToString(data)}
		if tags != nil {
			w.Tags = hex.EncodeToString(tags)
		}
		out = append(out, w)
	}
	return out
}

// JSON renders the bundle as indented, self-contained JSON.
func (b *Bundle) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		// Bundle contains only marshalable types; this cannot happen.
		panic(err)
	}
	return out
}

// ValidateBundle parses raw bundle JSON and checks its structural
// invariants: the schema identity, a non-empty reason, a full register
// file, kind-tagged trace records (retires carrying disassembly), and a
// capture count consistent with the window. This is what vp-load -verify
// and the CI forensics job assert.
func ValidateBundle(raw []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("flight: bundle does not parse: %w", err)
	}
	if b.Schema != SchemaV1 {
		return nil, fmt.Errorf("flight: unknown bundle schema %q", b.Schema)
	}
	if b.Reason == "" {
		return nil, fmt.Errorf("flight: bundle has no reason")
	}
	if len(b.Regs) != 32 {
		return nil, fmt.Errorf("flight: bundle has %d registers, want 32", len(b.Regs))
	}
	if uint64(len(b.Trace)) > b.Captured {
		return nil, fmt.Errorf("flight: trace window (%d) exceeds capture count (%d)",
			len(b.Trace), b.Captured)
	}
	for i, t := range b.Trace {
		if t.Kind == "" {
			return nil, fmt.Errorf("flight: trace record %d has no kind", i)
		}
		if t.Kind == "retire" && t.Disasm == "" {
			return nil, fmt.Errorf("flight: retire record %d has no disassembly", i)
		}
	}
	for i, w := range b.Mem {
		if _, err := hex.DecodeString(w.Data); err != nil {
			return nil, fmt.Errorf("flight: mem window %d data is not hex: %w", i, err)
		}
		if w.Tags != "" {
			if _, err := hex.DecodeString(w.Tags); err != nil {
				return nil, fmt.Errorf("flight: mem window %d tags are not hex: %w", i, err)
			}
			if len(w.Tags) != len(w.Data) {
				return nil, fmt.Errorf("flight: mem window %d tag/data length mismatch", i)
			}
		}
	}
	return &b, nil
}
