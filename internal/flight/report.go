package flight

import (
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// WriteReport renders the bundle as a human-readable forensic report: the
// headline verdict, the disassembled trace window, the register/tag file
// and the memory hexdumps. The output is deterministic for a deterministic
// run — volatile fields (GoVersion, the metrics map, which includes the
// host-calibrated capture cost) are deliberately excluded so the report can
// be golden-tested.
func (b *Bundle) WriteReport(w io.Writer) error {
	var sb strings.Builder

	fmt.Fprintf(&sb, "== vpdift forensic bundle (%s) ==\n", b.Schema)
	fmt.Fprintf(&sb, "reason:   %s\n", b.Reason)
	fmt.Fprintf(&sb, "version:  %s\n", b.Version)
	fmt.Fprintf(&sb, "sim time: %d ns   instret: %d   pc: %s\n", b.SimNs, b.Instret, b.PC)
	if b.Exited {
		fmt.Fprintf(&sb, "guest exited with code %d\n", b.ExitCode)
	}

	if v := b.Violation; v != nil {
		fmt.Fprintf(&sb, "\nviolation: %s\n", v.Message)
		fmt.Fprintf(&sb, "  kind %s: flow %s -> %s not allowed\n", v.Kind, v.Have, v.Required)
		line := "  pc " + v.PC
		if v.Addr != "" {
			line += "  addr " + v.Addr
		}
		if v.Value != "" {
			line += "  value " + v.Value
		}
		if v.Port != "" {
			line += "  port " + v.Port
		}
		sb.WriteString(line + "\n")
		if len(v.Provenance) > 0 {
			sb.WriteString("provenance (classification first, failed check last):\n")
			for _, p := range v.Provenance {
				fmt.Fprintf(&sb, "  %s\n", p)
			}
		}
	}
	if f := b.Fault; f != nil {
		fmt.Fprintf(&sb, "\nfault: %s\n", f.Cause)
		line := "  pc " + f.PC
		if f.Addr != "" {
			line += "  addr " + f.Addr
		}
		sb.WriteString(line + "\n")
	}

	if p := b.Policy; p != nil {
		fmt.Fprintf(&sb, "\npolicy: classes [%s], default %s\n",
			strings.Join(p.Classes, " "), p.Default)
		if p.Lattice != "" {
			fmt.Fprintf(&sb, "  lattice: %s\n", p.Lattice)
		}
	}

	fmt.Fprintf(&sb, "\ntrace (last %d of %d captured, %d overwritten):\n",
		len(b.Trace), b.Captured, b.Dropped)
	for _, t := range b.Trace {
		switch t.Kind {
		case "retire":
			line := fmt.Sprintf("  [%8d] %s  %s  %-28s", t.Seq, t.PC, t.Insn, t.Disasm)
			if t.Addr != "" {
				line += " addr=" + t.Addr
			}
			if t.Taken {
				line += " taken"
			}
			if t.TaintRd {
				line += " taint>rd"
			}
			sb.WriteString(strings.TrimRight(line, " ") + "\n")
		case "violation":
			fmt.Fprintf(&sb, "  [%8d] !! violation at %s", t.Seq, t.PC)
			if t.Disasm != "" {
				fmt.Fprintf(&sb, "  %s", t.Disasm)
			}
			if t.Addr != "" {
				fmt.Fprintf(&sb, "  addr=%s", t.Addr)
			}
			sb.WriteString(" !!\n")
		case "fault":
			fmt.Fprintf(&sb, "  [%8d] !! fault at %s", t.Seq, t.PC)
			if t.Disasm != "" {
				fmt.Fprintf(&sb, "  %s", t.Disasm)
			}
			if t.Addr != "" {
				fmt.Fprintf(&sb, "  addr=%s", t.Addr)
			}
			sb.WriteString(" !!\n")
		default:
			note := t.Note
			if note == "" {
				note = t.Kind
			}
			if t.Kind == "trap" && t.PC != "" {
				note += " epc=" + t.PC
			}
			if t.Addr != "" && t.Kind == "bus" {
				note += " addr=" + t.Addr
			}
			fmt.Fprintf(&sb, "  [%8d] -- %s --\n", t.Seq, note)
		}
	}

	sb.WriteString("\nregisters:\n")
	for i := 0; i < len(b.Regs); i += 4 {
		var line strings.Builder
		for j := i; j < i+4 && j < len(b.Regs); j++ {
			r := b.Regs[j]
			cell := fmt.Sprintf("%-4s=%s", r.Name, r.Value)
			if r.Class != "" {
				cell += "(" + r.Class + ")"
			}
			fmt.Fprintf(&line, "  %-28s", cell)
		}
		sb.WriteString(strings.TrimRight(line.String(), " ") + "\n")
	}

	if len(b.Mem) > 0 {
		sb.WriteString("\nmemory (±64B around touched addresses):\n")
		for _, mw := range b.Mem {
			data, err := hex.DecodeString(mw.Data)
			if err != nil {
				continue
			}
			var tags []byte
			if mw.Tags != "" {
				tags, _ = hex.DecodeString(mw.Tags)
			}
			start, _ := parseHex32(mw.Start)
			writeHexdump(&sb, start, data, tags)
		}
	}

	_, err := io.WriteString(w, sb.String())
	return err
}

func parseHex32(s string) (uint32, bool) {
	var v uint32
	if _, err := fmt.Sscanf(s, "0x%x", &v); err != nil {
		return 0, false
	}
	return v, true
}

// writeHexdump renders one memory window, 16 bytes per line, with an ASCII
// gutter and (when present) the per-byte tag row underneath.
func writeHexdump(sb *strings.Builder, start uint32, data, tags []byte) {
	for off := 0; off < len(data); off += 16 {
		end := off + 16
		if end > len(data) {
			end = len(data)
		}
		var hexPart, ascii strings.Builder
		for k := off; k < end; k++ {
			fmt.Fprintf(&hexPart, "%02x ", data[k])
			if data[k] >= 0x20 && data[k] < 0x7f {
				ascii.WriteByte(data[k])
			} else {
				ascii.WriteByte('.')
			}
		}
		fmt.Fprintf(sb, "  0x%08x: %-48s |%s|\n", start+uint32(off), hexPart.String(), ascii.String())
		if tags != nil {
			var tagPart strings.Builder
			for k := off; k < end && k < len(tags); k++ {
				fmt.Fprintf(&tagPart, "%2x ", tags[k])
			}
			fmt.Fprintf(sb, "        tags: %s\n", strings.TrimRight(tagPart.String(), " "))
		}
	}
}
