// Package flight implements the always-on flight recorder: a small
// fixed-cost, overwrite-oldest ring of compressed per-retire records plus
// interleaved platform marks (IRQ lines rising, traps taken, MMIO bus
// transactions, kernel events). The recorder is fed from the hot loop of
// whichever core the platform built — the baseline VP, the inline VP+, or
// the decoupled front end — so the captured window is identical across
// modes, and it allocates nothing in steady state (proven by an alloc guard
// in flight_test.go, like the telemetry sampler's).
//
// On a violation, a guest fault, or an explicit Platform.Snapshot, the
// ring's window is frozen into a forensic Bundle (bundle.go): one
// self-contained JSON document — disassembled trace window, register + tag
// file, provenance chain, memory/taint hexdumps around every address the
// window touched, policy identity, build metadata — plus a human-readable
// report (report.go). The package deliberately imports nothing outside the
// standard library so every layer (rv32, soc, telemetry, cmd tools) can
// depend on it without cycles; architecture-specific knowledge
// (disassembly, register names, RAM access) enters through the Snapshot
// struct's function fields.
package flight

import (
	"sync"
	"time"
)

// DefaultSize is the default ring capacity in records. 4096 records at 24
// bytes each is ~96 KiB — resident in L2, far below any guest working set,
// and covering the last few thousand retires, which in practice spans the
// whole final basic-block neighborhood of a violation.
const DefaultSize = 4096

// Record kinds.
const (
	KindRetire    uint8 = iota // one retired instruction
	KindIRQ                    // an interrupt line rose (Aux = line mask)
	KindTrap                   // trap taken into the guest handler (Insn = cause, Addr = tval)
	KindBus                    // an MMIO bus transaction (Aux = interned range name, Insn = size)
	KindFault                  // terminal guest fault (unmapped access, trap with mtvec=0)
	KindViolation              // terminal policy violation — always the window's last record
	KindMark                   // generic platform event (Aux = interned name)
)

// Per-retire flag bits.
const (
	FlagBranch  uint8 = 1 << iota // control-transfer instruction
	FlagTaken                     // the transfer redirected the PC (next != pc+4)
	FlagLoad                      // memory load; Addr holds the effective address
	FlagStore                     // memory store; Addr holds the effective address
	FlagTaintRd                   // rd carries a non-default tag after retire (VP+ only)
)

// Rec is one compressed flight record: 24 bytes, fixed layout, no pointers,
// so the ring is a single flat allocation the GC never scans.
type Rec struct {
	Time  uint64 // instruction index (Instret) at capture
	PC    uint32
	Insn  uint32 // raw instruction word (retires); cause (traps); size (bus)
	Addr  uint32 // effective address (loads/stores, bus, faults); tval (traps)
	Aux   uint16 // IRQ line mask; interned name id for bus/kernel marks
	Kind  uint8
	Flags uint8
}

// Recorder is the overwrite-oldest flight ring. It is owned by the
// simulation thread: every producer (core retire path, platform mark sites)
// and every reader (Window, the bundle builder, the metrics snapshot) runs
// on the kernel's cooperative scheduler, so no synchronization is needed —
// in decoupled-taint mode the monitor goroutine never touches the recorder.
type Recorder struct {
	recs []Rec
	mask uint64
	n    uint64 // monotonic count of records ever captured

	bundles uint64

	// Interned mark names (bus range names, kernel event names). Id 0 is
	// reserved for "no name"; lookups after the first occurrence are a map
	// probe with no allocation, keeping the steady-state capture zero-alloc.
	names  []string
	nameID map[string]uint16
}

// New builds a recorder with the given ring capacity, rounded up to a power
// of two; size <= 0 selects DefaultSize.
func New(size int) *Recorder {
	if size <= 0 {
		size = DefaultSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Recorder{
		recs:   make([]Rec, n),
		mask:   uint64(n - 1),
		nameID: make(map[string]uint16),
	}
}

// Slot claims the next overwrite-oldest slot and advances the ring. It is
// deliberately tiny so it inlines into the interpreter hot loops (the alloc
// guard and the perf -flight guard both depend on the capture staying a
// handful of instructions). Slots are recycled: the caller must overwrite
// every field.
func (r *Recorder) Slot() *Rec {
	rec := &r.recs[r.n&r.mask]
	r.n++
	return rec
}

// Retire captures one retired instruction. addr is only meaningful when
// flags carries FlagLoad or FlagStore. Zero-alloc; called once per retire
// from the interpreter hot loop.
func (r *Recorder) Retire(pc, insn, addr uint32, time uint64, flags uint8) {
	rec := r.Slot()
	rec.Time = time
	rec.PC = pc
	rec.Insn = insn
	rec.Addr = addr
	rec.Aux = 0
	rec.Kind = KindRetire
	rec.Flags = flags
}

// mark appends a non-retire record.
func (r *Recorder) mark(kind uint8, time uint64, pc, insn, addr uint32, aux uint16, flags uint8) {
	rec := r.Slot()
	rec.Time = time
	rec.PC = pc
	rec.Insn = insn
	rec.Addr = addr
	rec.Aux = aux
	rec.Kind = kind
	rec.Flags = flags
}

// MarkIRQ records an interrupt line rising.
func (r *Recorder) MarkIRQ(time uint64, line uint32) {
	r.mark(KindIRQ, time, 0, 0, 0, uint16(line), 0)
}

// MarkTrap records a trap taken into the guest handler.
func (r *Recorder) MarkTrap(time uint64, epc, tval, cause uint32) {
	r.mark(KindTrap, time, epc, cause, tval, 0, 0)
}

// MarkBus records an MMIO bus transaction against the named address range.
func (r *Recorder) MarkBus(time uint64, rangeName string, addr uint32, write bool, size int) {
	fl := FlagLoad
	if write {
		fl = FlagStore
	}
	r.mark(KindBus, time, 0, uint32(size), addr, r.intern(rangeName), fl)
}

// MarkEvent records a generic named platform event (e.g. "wfi-sleep").
func (r *Recorder) MarkEvent(time uint64, name string) {
	r.mark(KindMark, time, 0, 0, 0, r.intern(name), 0)
}

// MarkViolation records the terminal policy violation; the bundle builder
// relies on it being the window's last record so the trace provably ends at
// the violating instruction.
func (r *Recorder) MarkViolation(time uint64, pc, insn, addr uint32) {
	r.mark(KindViolation, time, pc, insn, addr, 0, 0)
}

// MarkFault records a terminal guest fault (unmapped/misaligned access,
// illegal instruction or other trap with no handler installed).
func (r *Recorder) MarkFault(time uint64, pc, insn, addr uint32) {
	r.mark(KindFault, time, pc, insn, addr, 0, 0)
}

func (r *Recorder) intern(name string) uint16 {
	if id, ok := r.nameID[name]; ok {
		return id
	}
	// Ids are 1-based; 0 means "no name". Cap the table well below uint16
	// range — mark names come from the fixed peripheral map, not user input.
	if len(r.names) >= 1<<12 {
		return 0
	}
	r.names = append(r.names, name)
	id := uint16(len(r.names))
	r.nameID[name] = id
	return id
}

// NameOf resolves an interned mark-name id; empty for id 0 or unknown ids.
func (r *Recorder) NameOf(id uint16) string {
	if id == 0 || int(id) > len(r.names) {
		return ""
	}
	return r.names[id-1]
}

// Window returns the captured records in chronological order (oldest
// first). The returned slice is a copy; the ring keeps recording.
func (r *Recorder) Window() []Rec {
	count := r.n
	if size := uint64(len(r.recs)); count > size {
		count = size
	}
	out := make([]Rec, count)
	start := r.n - count
	for k := uint64(0); k < count; k++ {
		out[k] = r.recs[(start+k)&r.mask]
	}
	return out
}

// Len reports the current ring occupancy in records.
func (r *Recorder) Len() int {
	if r.n > uint64(len(r.recs)) {
		return len(r.recs)
	}
	return int(r.n)
}

// Size reports the ring capacity in records.
func (r *Recorder) Size() int { return len(r.recs) }

// Captured reports how many records were ever captured.
func (r *Recorder) Captured() uint64 { return r.n }

// Dropped reports how many captured records the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r.n > uint64(len(r.recs)) {
		return r.n - uint64(len(r.recs))
	}
	return 0
}

// Bundles reports how many forensic bundles this recorder emitted.
func (r *Recorder) Bundles() uint64 { return r.bundles }

var (
	captureCostOnce sync.Once
	captureCostNs   uint64
)

// CaptureCostNs reports the measured cost of one Retire capture in
// nanoseconds, calibrated once per process against a throwaway ring (so the
// exporter can publish a real number instead of a guess). Typically 1-5 ns;
// the value is volatile across hosts and excluded from golden reports.
func CaptureCostNs() uint64 {
	captureCostOnce.Do(func() {
		r := New(DefaultSize)
		const reps = 1 << 16
		start := time.Now()
		for i := 0; i < reps; i++ {
			r.Retire(0x80000000, 0x00000013, 0, uint64(i), 0)
		}
		captureCostNs = uint64(time.Since(start).Nanoseconds() / reps)
	})
	return captureCostNs
}
