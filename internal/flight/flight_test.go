package flight

import (
	"strings"
	"testing"
)

func TestRingRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultSize}, {-1, DefaultSize}, {1, 1}, {2, 2}, {3, 4},
		{100, 128}, {4096, 4096}, {5000, 8192},
	} {
		if got := New(tc.in).Size(); got != tc.want {
			t.Errorf("New(%d).Size() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestWindowOverwritesOldest(t *testing.T) {
	r := New(4)
	for k := uint32(0); k < 10; k++ {
		r.Retire(0x80000000+4*k, 0x13, 0, uint64(k), 0)
	}
	if r.Captured() != 10 || r.Dropped() != 6 || r.Len() != 4 {
		t.Fatalf("captured/dropped/len = %d/%d/%d, want 10/6/4",
			r.Captured(), r.Dropped(), r.Len())
	}
	w := r.Window()
	if len(w) != 4 {
		t.Fatalf("window length %d, want 4", len(w))
	}
	for k, rec := range w {
		if want := uint64(6 + k); rec.Time != want {
			t.Errorf("window[%d].Time = %d, want %d (oldest first)", k, rec.Time, want)
		}
	}
}

func TestWindowPartialFill(t *testing.T) {
	r := New(8)
	r.Retire(0x80000000, 0x13, 0, 0, 0)
	r.MarkIRQ(1, 0x80)
	w := r.Window()
	if len(w) != 2 || w[0].Kind != KindRetire || w[1].Kind != KindIRQ {
		t.Fatalf("window = %+v, want [retire irq]", w)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
}

func TestMarkNameInterning(t *testing.T) {
	r := New(8)
	r.MarkBus(1, "uart0", 0x10000000, true, 4)
	r.MarkBus(2, "uart0", 0x10000004, false, 1)
	r.MarkEvent(3, "wfi-sleep")
	w := r.Window()
	if got := r.NameOf(w[0].Aux); got != "uart0" {
		t.Errorf("NameOf(bus) = %q, want uart0", got)
	}
	if w[0].Aux != w[1].Aux {
		t.Errorf("same name interned twice: %d vs %d", w[0].Aux, w[1].Aux)
	}
	if got := r.NameOf(w[2].Aux); got != "wfi-sleep" {
		t.Errorf("NameOf(mark) = %q, want wfi-sleep", got)
	}
	if r.NameOf(0) != "" || r.NameOf(999) != "" {
		t.Error("NameOf must be empty for id 0 and unknown ids")
	}
	if w[0].Flags&FlagStore == 0 || w[1].Flags&FlagLoad == 0 {
		t.Error("bus marks must carry the transfer direction flag")
	}
}

// TestCaptureZeroAlloc is the recorder's always-on contract: steady-state
// capture — retires, IRQ/trap marks, and bus/kernel marks with already
// interned names — must not allocate, like the telemetry sampler's tick.
func TestCaptureZeroAlloc(t *testing.T) {
	r := New(64)
	r.MarkBus(0, "uart0", 0x10000000, true, 4) // intern outside the measured loop
	r.MarkEvent(0, "wfi-sleep")
	n := testing.AllocsPerRun(1000, func() {
		r.Retire(0x80000100, 0x00a50533, 0x80001000, 42, FlagLoad)
		r.MarkIRQ(42, 0x80)
		r.MarkTrap(42, 0x80000100, 0, 11)
		r.MarkBus(42, "uart0", 0x10000000, true, 4)
		r.MarkEvent(42, "wfi-sleep")
	})
	if n != 0 {
		t.Fatalf("steady-state capture allocates %v times per run, want 0", n)
	}
}

func testSnapshot() *Snapshot {
	s := &Snapshot{
		Reason:  "violation",
		Version: "test",
		SimNs:   1000,
		Instret: 42,
		PC:      0x80000120,
		RAMBase: 0x80000000,
		RAMSize: 1 << 20,
		Policy:  &PolicyInfo{Classes: []string{"LO", "HI"}, Default: "LO"},
		Violation: &ViolationInfo{
			Kind: "fetch-clearance", Have: "LO", Required: "HI",
			PC: Hex32(0x80000120), Message: "security violation",
		},
		Disasm: func(w, pc uint32) string { return "insn" },
		Mem: func(addr, size uint32) (data, tags []byte) {
			d := make([]byte, size)
			tg := make([]byte, size)
			for i := range d {
				d[i] = byte(addr + uint32(i))
			}
			return d, tg
		},
	}
	for i := range s.Regs {
		s.Regs[i] = RegState{Name: "x0", Value: Hex32(0)}
	}
	return s
}

func TestBundleRoundTrip(t *testing.T) {
	r := New(16)
	r.Retire(0x80000100, 0x00a50533, 0, 40, 0)
	r.Retire(0x80000104, 0x0005a583, 0x80001000, 41, FlagLoad)
	r.MarkViolation(42, 0x80000120, 0xdeadbeef, 0)
	b := r.Bundle(testSnapshot())
	if r.Bundles() != 1 {
		t.Fatalf("bundles counter = %d, want 1", r.Bundles())
	}
	got, err := ValidateBundle(b.JSON())
	if err != nil {
		t.Fatalf("ValidateBundle: %v", err)
	}
	if got.Schema != SchemaV1 || got.Reason != "violation" {
		t.Fatalf("round-trip lost identity: %+v", got)
	}
	if len(got.Trace) != 3 {
		t.Fatalf("trace has %d records, want 3", len(got.Trace))
	}
	if last := got.Trace[len(got.Trace)-1]; last.Kind != "violation" {
		t.Fatalf("window must end at the violation, ends at %q", last.Kind)
	}
	if len(got.Mem) == 0 {
		t.Fatal("load in window must produce a memory window")
	}
	if got.Mem[0].Tags == "" || len(got.Mem[0].Tags) != len(got.Mem[0].Data) {
		t.Fatalf("memory window must carry matching tag bytes: %+v", got.Mem[0])
	}
}

func TestBundleMergesMemWindows(t *testing.T) {
	r := New(16)
	// Two accesses 16 bytes apart merge into one ±64 window; one far away
	// stays separate.
	r.Retire(0x80000100, 0x13, 0x80001000, 1, FlagLoad)
	r.Retire(0x80000104, 0x13, 0x80001010, 2, FlagStore)
	r.Retire(0x80000108, 0x13, 0x80010000, 3, FlagLoad)
	r.Retire(0x8000010c, 0x13, 0x10000000, 4, FlagStore) // MMIO: no window
	b := r.Bundle(testSnapshot())
	if len(b.Mem) != 2 {
		t.Fatalf("got %d memory windows, want 2 (merged + separate): %+v", len(b.Mem), b.Mem)
	}
}

func TestValidateBundleRejects(t *testing.T) {
	r := New(16)
	r.Retire(0x80000100, 0x13, 0, 1, 0)
	good := r.Bundle(testSnapshot()).JSON()
	for _, tc := range []struct{ name, from, to string }{
		{"bad schema", SchemaV1, "nope/v9"},
		{"no reason", `"reason": "violation"`, `"reason": ""`},
		{"missing disasm", `"disasm": "insn"`, `"disasm": ""`},
	} {
		raw := strings.Replace(string(good), tc.from, tc.to, 1)
		if _, err := ValidateBundle([]byte(raw)); err == nil {
			t.Errorf("%s: ValidateBundle accepted a corrupt bundle", tc.name)
		}
	}
	if _, err := ValidateBundle([]byte("not json")); err == nil {
		t.Error("ValidateBundle accepted non-JSON input")
	}
}

func TestReportIsDeterministicAndComplete(t *testing.T) {
	build := func() string {
		r := New(16)
		r.Retire(0x80000100, 0x00a50533, 0, 40, 0)
		r.Retire(0x80000104, 0x0005a583, 0x80001000, 41, FlagLoad|FlagTaintRd)
		r.MarkIRQ(41, 0x80)
		r.MarkViolation(42, 0x80000120, 0xdeadbeef, 0)
		s := testSnapshot()
		s.GoVersion = "go-host-specific" // must not leak into the report
		s.Metrics = map[string]uint64{"flight.capture_cost_ns": 3}
		var sb strings.Builder
		if err := r.Bundle(s).WriteReport(&sb); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		return sb.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatal("report is not deterministic across identical runs")
	}
	for _, want := range []string{"violation", "trace (last 4", "registers:", "memory", "taint>rd", "irq line"} {
		if !strings.Contains(a, want) {
			t.Errorf("report missing %q:\n%s", want, a)
		}
	}
	for _, banned := range []string{"go-host-specific", "capture_cost_ns"} {
		if strings.Contains(a, banned) {
			t.Errorf("report leaks volatile field %q", banned)
		}
	}
}
