package obs

import (
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"sim.instret", "sim_instret"},
		{"bus.monitor_dropped.uart0", "bus_monitor_dropped_uart0"},
		{"violations.output-clearance", "violations_output_clearance"},
		{"io.uart0.tx.bytes", "io_uart0_tx_bytes"},
		{"lub_ops", "lub_ops"},
		{"already_legal:name", "already_legal:name"},
		{"9starts.with.digit", "_9starts_with_digit"},
		{"", "_"},
		{"weird name/with spaces", "weird_name_with_spaces"},
	}
	for _, c := range cases {
		if got := SanitizeMetricName(c.in); got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Already-legal names must come back unchanged (same string, no copy
	// needed, but at minimum equal).
	if got := SanitizeMetricName("checks_fetch"); got != "checks_fetch" {
		t.Errorf("legal name changed: %q", got)
	}
}

func TestMetricsSnapshotInto(t *testing.T) {
	m := NewMetrics()
	m.Add("a.one", 1)
	m.Add("b.two", 2)
	dst := map[string]uint64{"stale": 99, "a.one": 77}
	m.SnapshotInto(dst)
	if dst["a.one"] != 1 || dst["b.two"] != 2 {
		t.Errorf("SnapshotInto = %v", dst)
	}
	if dst["stale"] != 99 {
		t.Error("SnapshotInto must leave unrelated keys alone")
	}
	// Snapshot and SnapshotInto agree.
	snap := m.Snapshot()
	if len(snap) != 2 || snap["a.one"] != 1 || snap["b.two"] != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
}

// The sampler contract: once dst has seen the counter set, re-snapshotting
// into it allocates nothing.
func TestMetricsSnapshotIntoZeroAlloc(t *testing.T) {
	m := NewMetrics()
	for _, name := range []string{"sim.instret", "checks.fetch", "bus.txns", "io.uart0.tx.bytes"} {
		m.Add(name, 3)
	}
	dst := make(map[string]uint64, 8)
	m.SnapshotInto(dst) // warm: keys exist, map sized
	allocs := testing.AllocsPerRun(200, func() {
		m.SnapshotInto(dst)
	})
	if allocs != 0 {
		t.Errorf("SnapshotInto allocates %.1f per call, want 0", allocs)
	}
}

func BenchmarkMetricsSnapshotInto(b *testing.B) {
	m := NewMetrics()
	for i := 0; i < 40; i++ {
		m.Add(string(rune('a'+i%26))+".counter", uint64(i))
	}
	dst := make(map[string]uint64, 64)
	m.SnapshotInto(dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SnapshotInto(dst)
	}
}

func BenchmarkMetricsSnapshot(b *testing.B) {
	m := NewMetrics()
	for i := 0; i < 40; i++ {
		m.Add(string(rune('a'+i%26))+".counter", uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Snapshot()
	}
}
