package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vpdift/internal/core"
)

const secret core.Tag = 1 // any non-default tag

// leakChain drives the hooks through a minimal classified-load -> op ->
// store -> failed-check sequence and returns the observer and violation.
func leakChain(o *Observer) *core.Violation {
	o.PinClassify("secret", 0x100, 0x104, secret)
	o.BeginInsn(0x8000, 0x00052283) // lw t0, 0(a0)
	o.OnLoad(0x100, 4, core.W(0xAB, secret))
	o.AssignReg(5)
	o.BeginInsn(0x8004, 0x00628333) // add t1, t0, t2
	o.OnOp(5, 7, 0xAB, secret)
	o.AssignReg(6)
	o.BeginInsn(0x8008, 0x00632023) // sw t1, 0(t1)
	o.OnStore(0x4000_1000, 4, 6, core.W(0xAB, secret))
	v := &core.Violation{Kind: core.KindOutputClearance, Have: secret, Port: "uart0.tx"}
	o.OnViolation(v, o.LastStore(), 0)
	return v
}

func TestChainReconstruction(t *testing.T) {
	o := New()
	v := leakChain(o)
	want := []core.TaintEventKind{
		core.EvClassify, core.EvLoad, core.EvOp, core.EvStore, core.EvCheck,
	}
	if len(v.Provenance) != len(want) {
		t.Fatalf("chain has %d events, want %d: %v", len(v.Provenance), len(want), v.Provenance)
	}
	for i, ev := range v.Provenance {
		if ev.Kind != want[i] {
			t.Errorf("chain[%d] = %v, want %v", i, ev.Kind, want[i])
		}
		if i > 0 && ev.Seq <= v.Provenance[i-1].Seq {
			t.Errorf("chain not in sequence order at %d", i)
		}
	}
}

func TestChainFollowsPrev2(t *testing.T) {
	// An op combining two tracked sources must pull both lineages in.
	o := New()
	o.PinClassify("a", 0x100, 0x104, secret)
	o.PinClassify("b", 0x200, 0x204, secret)
	o.BeginInsn(0x8000, 1)
	o.OnLoad(0x100, 4, core.W(1, secret))
	o.AssignReg(5)
	o.BeginInsn(0x8004, 2)
	o.OnLoad(0x200, 4, core.W(2, secret))
	o.AssignReg(6)
	o.BeginInsn(0x8008, 3)
	o.OnOp(5, 6, 3, secret)
	o.AssignReg(7)
	v := &core.Violation{Kind: core.KindBranchClearance, Have: secret}
	o.OnViolation(v, o.RegSource(7), 0)
	roots := 0
	for _, ev := range v.Provenance {
		if ev.Kind == core.EvClassify {
			roots++
		}
	}
	if roots != 2 {
		t.Errorf("chain reaches %d classification roots, want both; chain: %v", roots, v.Provenance)
	}
}

func TestUntrackedFlowsRecordNothing(t *testing.T) {
	// Default-class data with no tracked sources must not grow the ring.
	o := New()
	o.BeginInsn(0x8000, 1)
	o.OnLoad(0x100, 4, core.W(7, 0))
	o.AssignReg(5)
	o.OnOp(5, RegNone, 7, 0)
	o.AssignReg(6)
	o.OnStore(0x200, 4, 6, core.W(7, 0))
	o.OnJump(0x8000, 1, 0)
	if o.EventCount() != 0 {
		t.Errorf("untracked flows recorded %d events, want 0", o.EventCount())
	}
}

func TestStoreSeversOldChain(t *testing.T) {
	// Overwriting a tracked word with untracked data must clear its source.
	o := New()
	o.PinClassify("secret", 0x100, 0x104, secret)
	if o.MemSource(0x100) == 0 {
		t.Fatal("classified word has no source")
	}
	o.OnStore(0x100, 4, 9, core.W(0, 0))
	if o.MemSource(0x100) != 0 {
		t.Error("untracked store must sever the word's provenance")
	}
}

func TestRingEviction(t *testing.T) {
	o := NewWithOptions(Options{RingCapacity: 4, MaxChain: 16})
	o.PinClassify("secret", 0x100, 0x104, secret)
	// Push enough tracked stores through the 4-slot ring to evict the early
	// links of the final chain.
	o.BeginInsn(0x8000, 1)
	o.OnLoad(0x100, 4, core.W(1, secret))
	o.AssignReg(5)
	for i := 0; i < 10; i++ {
		o.OnStore(0x200+uint32(8*i), 4, 5, core.W(1, secret))
	}
	if o.Evicted() == 0 {
		t.Fatal("10 events through a 4-slot ring must evict")
	}
	v := &core.Violation{Kind: core.KindOutputClearance, Have: secret, Port: "uart0.tx"}
	o.OnViolation(v, o.LastStore(), 0)
	// The load (and hence the pinned root's link) was evicted: the chain
	// terminates at the evicted link but still ends with the check.
	if len(v.Provenance) == 0 {
		t.Fatal("chain empty after eviction")
	}
	if last := v.Provenance[len(v.Provenance)-1]; last.Kind != core.EvCheck {
		t.Errorf("chain ends with %v, want the check", last.Kind)
	}
	for _, ev := range v.Provenance {
		if ev.Kind == core.EvLoad {
			t.Error("evicted load must not appear in the chain")
		}
	}
	// Events() must never return stale evicted entries or zero-Seq holes.
	evs := o.Events()
	if len(evs) > 4+len(o.pinned) {
		t.Errorf("Events returned %d entries from a 4-slot ring", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq == 0 {
			t.Errorf("Events()[%d] is a hole", i)
		}
	}
}

func TestPinnedRootsSurviveEviction(t *testing.T) {
	o := NewWithOptions(Options{RingCapacity: 2, MaxChain: 16})
	o.PinClassify("secret", 0x100, 0x104, secret)
	for i := 0; i < 50; i++ {
		o.BeginInsn(0x8000, 1)
		o.OnLoad(0x100, 4, core.W(1, secret)) // Prev = pinned root every time
		o.AssignReg(5)
	}
	v := &core.Violation{Kind: core.KindOutputClearance, Have: secret}
	o.OnViolation(v, o.RegSource(5), 0)
	if first := v.Provenance[0]; first.Kind != core.EvClassify || first.Port != "secret" {
		t.Errorf("chain root = %+v, want the pinned classification", first)
	}
}

func TestMaxChainBound(t *testing.T) {
	o := NewWithOptions(Options{MaxChain: 3})
	v := leakChain(o)
	if len(v.Provenance) > 3 {
		t.Errorf("chain has %d events, MaxChain is 3", len(v.Provenance))
	}
	// The terminal check must survive the bound (it is pushed first).
	found := false
	for _, ev := range v.Provenance {
		if ev.Kind == core.EvCheck {
			found = true
		}
	}
	if !found {
		t.Error("bounded chain lost its terminal check event")
	}
}

func TestWriteJSONL(t *testing.T) {
	o := New()
	leakChain(o)
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != int(o.EventCount()) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), o.EventCount())
	}
	var prev uint64
	for _, line := range lines {
		var ev struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ev.Seq <= prev {
			t.Errorf("JSONL out of order at seq %d", ev.Seq)
		}
		if ev.Kind == "" {
			t.Errorf("event %d has no kind name", ev.Seq)
		}
		prev = ev.Seq
	}
}

func TestWriteChromeTrace(t *testing.T) {
	o := New()
	leakChain(o)
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) != int(o.EventCount()) {
		t.Fatalf("trace has %d events, want %d", len(events), o.EventCount())
	}
	for _, ev := range events {
		if ev["ph"] != "i" {
			t.Errorf("event phase %v, want instant", ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event has no numeric ts: %v", ev)
		}
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	o := New()
	leakChain(o)
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, o.MetricsSnapshot()); err != nil {
		t.Fatal(err)
	}
	var m map[string]uint64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["obs.events"] != o.EventCount() {
		t.Errorf("obs.events = %d, want %d", m["obs.events"], o.EventCount())
	}
	if m["checks.output"] == 0 {
		// leakChain raises an output violation via OnViolation, which does
		// not itself bump Checks (the call sites do) — but the violation
		// count must be there.
		t.Logf("checks.output not counted by OnViolation (by design)")
	}
	if m["violations.output-clearance"] != 1 {
		t.Errorf("violations.output-clearance = %d, want 1", m["violations.output-clearance"])
	}
}

func TestWriteMetricsJSONDeterministic(t *testing.T) {
	// The export must be byte-identical across snapshots of the same state:
	// the CI perf guard diffs archived metrics files, so map-iteration order
	// must never leak into the output.
	m := NewMetrics()
	for _, name := range []string{"z.last", "a.first", "m.middle", "core.instret", "cover.edges"} {
		m.Add(name, 7)
	}
	var first, second bytes.Buffer
	if err := WriteMetricsJSON(&first, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsJSON(&second, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("two snapshots of the same state render differently:\n%s\nvs\n%s",
			first.String(), second.String())
	}
	// Keys must appear in sorted order, not insertion order.
	idx := func(sub string) int { return bytes.Index(first.Bytes(), []byte(sub)) }
	if !(idx("a.first") < idx("cover.edges") && idx("cover.edges") < idx("m.middle") &&
		idx("m.middle") < idx("z.last")) {
		t.Errorf("keys are not sorted:\n%s", first.String())
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("x")
	*c += 41
	m.Add("x", 1)
	if got := m.Get("x"); got != 42 {
		t.Errorf("x = %d", got)
	}
	if got := m.Get("missing"); got != 0 {
		t.Errorf("missing = %d", got)
	}
	snap := m.Snapshot()
	if snap["x"] != 42 {
		t.Errorf("snapshot x = %d", snap["x"])
	}
}

func TestFormatEvents(t *testing.T) {
	o := New()
	v := leakChain(o)
	s := FormatEvents(v.Provenance, nil, func(ev core.TaintEvent) string {
		if ev.Kind == core.EvCheck {
			return "HERE"
		}
		return ""
	})
	if !strings.Contains(s, "classify") || !strings.Contains(s, "HERE") {
		t.Errorf("formatted events:\n%s", s)
	}
	if got := len(strings.Split(strings.TrimSpace(s), "\n")); got != len(v.Provenance) {
		t.Errorf("%d lines for %d events", got, len(v.Provenance))
	}
}

func TestInputPortProvenance(t *testing.T) {
	// An input event on a registered device defines the MMIO word's source,
	// so the CPU's subsequent load links to it.
	o := New()
	o.RegisterPort("uart0", 0x4000_1000)
	o.OnInput("uart0", 8, 4, "uart0.rx", 0x41, secret)
	if o.MemSource(0x4000_1008) == 0 {
		t.Fatal("input did not define the RX register's provenance")
	}
	o.BeginInsn(0x8000, 1)
	o.OnLoad(0x4000_1008, 4, core.W(0x41, secret))
	o.AssignReg(5)
	v := &core.Violation{Kind: core.KindFetchClearance, Have: secret}
	o.OnViolation(v, o.RegSource(5), 0)
	if first := v.Provenance[0]; first.Kind != core.EvInput || first.Port != "uart0.rx" {
		t.Errorf("chain root = %+v, want the uart0.rx input", first)
	}
}
