package obs

import (
	"encoding/json"
	"io"
)

// Metrics is a named-counter registry. Counters are created on first use;
// callers on hot paths should cache the *uint64 from Counter instead of
// paying a map lookup per increment. Add and Get are single-threaded like
// the rest of the simulation: concurrent readers (a live metrics scraper)
// must not call them while the kernel runs — take a snapshot under whatever
// lock serializes access to the platform, via Snapshot or the
// allocation-free SnapshotInto.
type Metrics struct {
	counters map[string]*uint64
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return &Metrics{counters: make(map[string]*uint64)} }

// Counter returns the counter cell for name, creating it at zero.
func (m *Metrics) Counter(name string) *uint64 {
	c, ok := m.counters[name]
	if !ok {
		c = new(uint64)
		m.counters[name] = c
	}
	return c
}

// Add increments a named counter by n.
func (m *Metrics) Add(name string, n uint64) { *m.Counter(name) += n }

// Get returns a counter's current value (0 if it was never touched).
func (m *Metrics) Get(name string) uint64 {
	if c, ok := m.counters[name]; ok {
		return *c
	}
	return 0
}

// Snapshot copies all counters into a plain map.
func (m *Metrics) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(m.counters))
	m.SnapshotInto(out)
	return out
}

// SnapshotInto copies every counter into dst, overwriting colliding keys
// and leaving other entries alone (clear dst first for an exact copy). It
// allocates nothing once dst has seen the counter set before — the variant
// a periodic sampler uses so a long run does not churn one map per sample.
func (m *Metrics) SnapshotInto(dst map[string]uint64) {
	for k, c := range m.counters {
		dst[k] = *c
	}
}

// WriteMetricsJSON writes a counter map as stable, indented JSON — the
// format cmd/perf consumes and the CI perf guard archives. encoding/json
// already marshals map keys in sorted order, so the output is deterministic
// without any pre-sorting. Metric names are written verbatim: the dotted
// names are legal JSON keys as-is, and SanitizeMetricName maps the same
// names onto the stricter Prometheus charset for the text-format exporter,
// so one key identifies one metric across both formats.
func WriteMetricsJSON(w io.Writer, counters map[string]uint64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(counters)
}

// SanitizeMetricName maps a metric key onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*: dots, dashes, and any other illegal
// byte become underscores, and a leading digit (or an empty name) gains an
// underscore prefix. It is the one shared sanitizer — the Prometheus
// exporter in internal/telemetry routes every name through it, and the JSON
// exporter above documents it — so the two export formats can never drift
// apart on naming.
func SanitizeMetricName(name string) string {
	legal := func(c byte, first bool) bool {
		return c == '_' || c == ':' ||
			c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			(!first && c >= '0' && c <= '9')
	}
	clean := name != ""
	for i := 0; i < len(name) && clean; i++ {
		clean = legal(name[i], i == 0)
	}
	if clean {
		return name
	}
	var b []byte
	if name == "" || name[0] >= '0' && name[0] <= '9' {
		b = append(b, '_')
	}
	for i := 0; i < len(name); i++ {
		if legal(name[i], false) {
			b = append(b, name[i])
		} else {
			b = append(b, '_')
		}
	}
	return string(b)
}
