package obs

import (
	"encoding/json"
	"io"
)

// Metrics is a named-counter registry. Counters are created on first use;
// callers on hot paths should cache the *uint64 from Counter instead of
// paying a map lookup per increment.
type Metrics struct {
	counters map[string]*uint64
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return &Metrics{counters: make(map[string]*uint64)} }

// Counter returns the counter cell for name, creating it at zero.
func (m *Metrics) Counter(name string) *uint64 {
	c, ok := m.counters[name]
	if !ok {
		c = new(uint64)
		m.counters[name] = c
	}
	return c
}

// Add increments a named counter by n.
func (m *Metrics) Add(name string, n uint64) { *m.Counter(name) += n }

// Get returns a counter's current value (0 if it was never touched).
func (m *Metrics) Get(name string) uint64 {
	if c, ok := m.counters[name]; ok {
		return *c
	}
	return 0
}

// Snapshot copies all counters into a plain map.
func (m *Metrics) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(m.counters))
	for k, c := range m.counters {
		out[k] = *c
	}
	return out
}

// WriteMetricsJSON writes a counter map as stable, indented JSON — the
// format cmd/perf consumes and the CI perf guard archives. encoding/json
// already marshals map keys in sorted order, so the output is deterministic
// without any pre-sorting.
func WriteMetricsJSON(w io.Writer, counters map[string]uint64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(counters)
}
