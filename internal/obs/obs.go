// Package obs is the platform's structured observability subsystem: it
// records tag-propagation provenance, bus/peripheral events, and simulation
// metrics across every layer of the virtual prototype.
//
// The paper's headline use case (Section VI-A) is debugging — the VP+ flags
// the UART debug-dump leak, but the engineer still has to work backwards by
// hand to find which instruction chain carried the PIN's HC tag to the
// uart0.tx port. An Observer closes that gap: while attached it records a
// fixed-size ring of TaintEvents linked backwards through per-register and
// per-memory-word source pointers, so a raised *core.Violation carries a
// provenance chain — the ordered list of instructions and bus transactions
// that moved the offending tag from its classification site to the failed
// clearance check.
//
// Everything here follows the existing Tracer nil-check discipline: the
// cores, peripherals, and bus monitors call Observer methods only behind an
// `if obs != nil` guard, so a platform without an observer pays one
// predictable not-taken branch per hook site and records nothing. Table II
// overhead numbers are therefore unchanged when observability is off.
//
// Ring-buffer eviction: events are stored in a circular buffer of
// Options.RingCapacity entries; once full, each new event overwrites the
// oldest. Backward links pointing at evicted events simply terminate the
// chain there — except classification events (the roots laid down at image
// load time), which are pinned in a separate never-evicted list so the
// start of a chain survives arbitrarily long runs.
package obs

import (
	"sort"

	"vpdift/internal/core"
	"vpdift/internal/tlm"
)

// Default sizing.
const (
	DefaultRingCapacity = 1 << 16
	DefaultMaxChain     = 64
)

// RegNone marks "no source register" in two-operand hook calls.
const RegNone = 0xff

// Options parameterizes an Observer.
type Options struct {
	// RingCapacity is the number of events the ring buffer holds before
	// eviction begins. Defaults to DefaultRingCapacity.
	RingCapacity int
	// MaxChain bounds the number of events reconstructed into a violation's
	// provenance chain. Defaults to DefaultMaxChain.
	MaxChain int
	// TraceExec additionally records an EvExec event for every retired
	// instruction (both cores). Very chatty; off by default.
	TraceExec bool
}

// Checks counts performed clearance checks by site. Fetch counts only
// uncached fetch checks: on a decode-cache hit the check is a memoized
// verdict (see DESIGN.md section 5.6), not a re-evaluation.
type Checks struct {
	Fetch   uint64
	Branch  uint64
	MemAddr uint64
	Store   uint64
	Output  uint64
	Input   uint64
}

// Observer records taint provenance, platform events, and metrics. Create
// one with New, pass it to the platform (soc.Config.Obs or
// vpdift.WithObserver), run, then inspect Events, violation provenance, and
// MetricsSnapshot. An Observer must not be shared between platforms.
type Observer struct {
	opts Options

	lat *core.Lattice
	def core.Tag
	now func() uint64 // simulated time source (kernel wiring)

	ring    []core.TaintEvent
	seq     uint64
	evicted uint64
	pinned  []core.TaintEvent

	// Provenance state: the last event that defined each register, each
	// memory word (keyed by address>>2, word granularity), the current PC
	// (set by indirect jumps), and the last store headed for a bus target.
	regSrc   [32]uint64
	memSrc   map[uint32]uint64
	pcSrc    uint64
	lastOut  uint64
	pending  uint64 // seq attached to the next register assignment
	curPC    uint32
	curInsn  uint32
	attached bool

	ports map[string]uint32 // device name -> bus base address

	// Checks are the clearance-check counters, incremented by the cores and
	// peripherals while the observer is attached.
	Checks Checks

	lubs     uint64 // wired into the policy lattice's LUB counter
	busRead  uint64 // bytes moved by monitored bus reads
	busWrite uint64 // bytes moved by monitored bus writes
	busTxns  uint64

	violations map[string]uint64 // violation kind -> count

	m *Metrics
}

// New creates an Observer with default options.
func New() *Observer { return NewWithOptions(Options{}) }

// NewWithOptions creates an Observer.
func NewWithOptions(o Options) *Observer {
	if o.RingCapacity <= 0 {
		o.RingCapacity = DefaultRingCapacity
	}
	if o.MaxChain <= 0 {
		o.MaxChain = DefaultMaxChain
	}
	return &Observer{
		opts:       o,
		ring:       make([]core.TaintEvent, 0, min(o.RingCapacity, 4096)),
		memSrc:     make(map[uint32]uint64),
		ports:      make(map[string]uint32),
		violations: make(map[string]uint64),
		m:          NewMetrics(),
	}
}

// Attach binds the observer to a platform's time source and security
// context. Called by the platform builder; an observer can be attached to
// exactly one platform.
func (o *Observer) Attach(now func() uint64, lat *core.Lattice, def core.Tag) {
	o.now = now
	o.lat = lat
	o.def = def
	o.attached = true
}

// Attached reports whether a platform has claimed this observer.
func (o *Observer) Attached() bool { return o.attached }

// TracesExec reports whether per-retire EvExec tracing was requested. The
// platform uses it to skip wiring the baseline core's instruction-boundary
// hook when the events would be dropped anyway.
func (o *Observer) TracesExec() bool { return o.opts.TraceExec }

// Lattice returns the security lattice of the attached platform (nil on the
// baseline VP or before attachment). Exporters use it for class names.
func (o *Observer) Lattice() *core.Lattice { return o.lat }

// RegisterPort records a peripheral's bus base address so input events can
// be associated with the memory-mapped register the CPU will read.
func (o *Observer) RegisterPort(dev string, base uint32) { o.ports[dev] = base }

// LUBCounter exposes the join-operation counter for lattice wiring.
func (o *Observer) LUBCounter() *uint64 { return &o.lubs }

// Metrics returns the observer's named-counter registry.
func (o *Observer) Metrics() *Metrics { return o.m }

// EventCount returns the total number of events recorded (including evicted
// and pinned ones).
func (o *Observer) EventCount() uint64 { return o.seq }

// Evicted returns how many events were overwritten by ring eviction.
func (o *Observer) Evicted() uint64 { return o.evicted }

// Events returns the live events — pinned classification roots plus the
// ring's current contents — in sequence order.
func (o *Observer) Events() []core.TaintEvent {
	out := make([]core.TaintEvent, 0, len(o.pinned)+len(o.ring))
	out = append(out, o.pinned...)
	for _, ev := range o.ring {
		if ev.Seq != 0 {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// emit assigns a sequence number and simulated timestamp, writes the event
// into its ring slot (evicting whatever lived there), and returns its seq.
// The slot is always (seq-1) mod capacity — pinned events consume sequence
// numbers without ring slots, so the slice can have transient zero-Seq holes
// during the fill phase; lookups verify Seq so holes never resolve.
func (o *Observer) emit(ev core.TaintEvent) uint64 {
	o.seq++
	ev.Seq = o.seq
	if o.now != nil {
		ev.Time = o.now()
	}
	idx := int((ev.Seq - 1) % uint64(o.opts.RingCapacity))
	if idx < len(o.ring) {
		if o.ring[idx].Seq != 0 {
			o.evicted++
		}
		o.ring[idx] = ev
	} else {
		for len(o.ring) < idx {
			o.ring = append(o.ring, core.TaintEvent{})
		}
		o.ring = append(o.ring, ev)
	}
	return ev.Seq
}

// pin records a never-evicted event (load-time classification roots).
func (o *Observer) pin(ev core.TaintEvent) uint64 {
	o.seq++
	ev.Seq = o.seq
	if o.now != nil {
		ev.Time = o.now()
	}
	o.pinned = append(o.pinned, ev)
	return ev.Seq
}

// event looks up a live event by sequence number: the ring slot it maps to
// (if not yet evicted) or the pinned list.
func (o *Observer) event(seq uint64) (core.TaintEvent, bool) {
	if seq == 0 || seq > o.seq {
		return core.TaintEvent{}, false
	}
	if n := len(o.ring); n > 0 {
		idx := int((seq - 1) % uint64(o.opts.RingCapacity))
		if idx < n && o.ring[idx].Seq == seq {
			return o.ring[idx], true
		}
	}
	i := sort.Search(len(o.pinned), func(i int) bool { return o.pinned[i].Seq >= seq })
	if i < len(o.pinned) && o.pinned[i].Seq == seq {
		return o.pinned[i], true
	}
	return core.TaintEvent{}, false
}

// Chain reconstructs the provenance chain ending at seq by walking the
// backward links, primary data lineage (Prev) first, bounded by
// Options.MaxChain. The result is ordered by sequence number: earliest
// event (typically the classification root) first, the given event last.
func (o *Observer) Chain(seq uint64) []core.TaintEvent {
	if seq == 0 {
		return nil
	}
	seen := make(map[uint64]bool, o.opts.MaxChain)
	out := make([]core.TaintEvent, 0, 8)
	stack := []uint64{seq}
	for len(stack) > 0 && len(out) < o.opts.MaxChain {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s == 0 || seen[s] {
			continue
		}
		seen[s] = true
		ev, ok := o.event(s)
		if !ok {
			continue // evicted: the chain terminates here
		}
		out = append(out, ev)
		// Push Prev last so the primary data lineage is explored first and
		// survives the MaxChain bound.
		stack = append(stack, ev.Prev2, ev.Prev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ---------------------------------------------------------------------------
// Core hooks. Every method below is called by the cores only behind an
// `if c.Obs != nil` guard — the hot path pays nothing when disabled.

// BeginInsn notes the instruction about to execute; subsequent events carry
// its pc and raw word. It also retires the pending jump provenance: pcSrc is
// only meaningful for the fetch-clearance check of the first instruction at
// an indirect-jump target.
func (o *Observer) BeginInsn(pc, insn uint32) {
	o.curPC, o.curInsn = pc, insn
	o.pcSrc = 0
	if o.opts.TraceExec {
		o.emit(core.TaintEvent{Kind: core.EvExec, PC: pc, Insn: insn})
	}
}

// SetInsn updates the current-instruction diagnostics (pc and raw word)
// without the side effects of BeginInsn. Cold violation paths use it when
// they fire before the instruction's deferred BeginInsn has run.
func (o *Observer) SetInsn(pc, insn uint32) {
	o.curPC, o.curInsn = pc, insn
}

// AssignReg consumes the pending source event into the destination
// register's provenance slot. Called from the cores' register write path;
// writers that did not prime a source (lui, jal link, csr reads) clear it.
func (o *Observer) AssignReg(rd uint8) {
	s := o.pending
	o.pending = 0
	if rd != 0 {
		o.regSrc[rd] = s
	}
}

// OnLoad records a memory/bus read about to land in a register and primes
// the next register assignment with it. Loads of untracked default-class
// data record nothing (chains never pass through them anyway).
func (o *Observer) OnLoad(addr, size uint32, w core.Word) {
	prev := o.memSrc[addr>>2]
	if prev == 0 && w.T == o.def {
		o.pending = 0
		return
	}
	o.pending = o.emit(core.TaintEvent{
		Kind: core.EvLoad, PC: o.curPC, Insn: o.curInsn,
		Addr: addr, Value: w.V, Tag: w.T, Prev: prev,
	})
}

// OnOp records a computational step combining register tags (rs2 == 0xff
// for single-source immediate forms) and primes the next register
// assignment. Untracked all-default steps record nothing.
func (o *Observer) OnOp(rs1, rs2 uint8, v uint32, t core.Tag) {
	prev := o.regSrc[rs1]
	var prev2 uint64
	if rs2 != RegNone {
		prev2 = o.regSrc[rs2]
	}
	if prev == 0 && prev2 == 0 && t == o.def {
		o.pending = 0
		return
	}
	o.pending = o.emit(core.TaintEvent{
		Kind: core.EvOp, PC: o.curPC, Insn: o.curInsn,
		Value: v, Tag: t, Prev: prev, Prev2: prev2,
	})
}

// OnStore records a register value written to memory or a bus target and
// updates the written words' provenance. It always refreshes the
// destination slots — an untracked store over a previously tracked word
// must sever the old chain.
func (o *Observer) OnStore(addr, size uint32, src uint8, w core.Word) {
	prev := o.regSrc[src]
	if prev == 0 && w.T == o.def {
		for a := addr &^ 3; a < addr+size; a += 4 {
			delete(o.memSrc, a>>2)
		}
		o.lastOut = 0
		return
	}
	s := o.emit(core.TaintEvent{
		Kind: core.EvStore, PC: o.curPC, Insn: o.curInsn,
		Addr: addr, Value: w.V, Tag: w.T, Prev: prev,
	})
	for a := addr &^ 3; a < addr+size; a += 4 {
		o.memSrc[a>>2] = s
	}
	o.lastOut = s
}

// OnJump records an indirect control transfer (jalr with the source
// register, mret with rs == 0xff and the mepc chain unavailable). The event
// becomes the PC provenance consulted by the next fetch-clearance check, so
// a chain can cross an overflowed return address.
func (o *Observer) OnJump(target uint32, rs uint8, t core.Tag) {
	var prev uint64
	if rs != RegNone {
		prev = o.regSrc[rs]
	}
	if prev == 0 && t == o.def {
		o.pcSrc = 0
		return
	}
	o.pcSrc = o.emit(core.TaintEvent{
		Kind: core.EvJump, PC: o.curPC, Insn: o.curInsn,
		Value: target, Tag: t, Prev: prev,
	})
}

// RegSource returns the provenance seq of a register (for violation sites).
func (o *Observer) RegSource(r uint8) uint64 { return o.regSrc[r] }

// MemSource returns the provenance seq of the word containing addr.
func (o *Observer) MemSource(addr uint32) uint64 { return o.memSrc[addr>>2] }

// PCSource returns the provenance of the current PC (set by the last
// indirect jump, consumed by the next instruction).
func (o *Observer) PCSource() uint64 { return o.pcSrc }

// LastStore returns the seq of the most recent store event — the link
// between a CPU store to an output register and the peripheral's clearance
// check on the very same byte.
func (o *Observer) LastStore() uint64 { return o.lastOut }

// OnViolation records the failed clearance check as the chain's terminal
// event, reconstructs the provenance chain, attaches it to the violation,
// and counts it. prev/prev2 are the source links appropriate to the check
// site (register, memory word, or last-store provenance).
func (o *Observer) OnViolation(v *core.Violation, prev, prev2 uint64) {
	s := o.emit(core.TaintEvent{
		Kind: core.EvCheck, PC: v.PC, Insn: o.curInsn,
		Addr: v.Addr, Value: v.Value, Tag: v.Have, Port: v.Port,
		Prev: prev, Prev2: prev2,
	})
	v.Provenance = o.Chain(s)
	// Stored under the exported "violations." name directly so snapshots
	// (including the sampler's allocation-free path) never concatenate.
	o.violations["violations."+v.Kind.String()]++
}

// ---------------------------------------------------------------------------
// Load-time and peripheral hooks.

// PinClassify records a load-time region classification as a pinned (never
// evicted) provenance root covering [start, end).
func (o *Observer) PinClassify(region string, start, end uint32, t core.Tag) {
	s := o.pin(core.TaintEvent{
		Kind: core.EvClassify, Addr: start, Value: end - start, Tag: t, Port: region,
	})
	for a := start &^ 3; a < end; a += 4 {
		o.memSrc[a>>2] = s
	}
}

// OnInput records data entering through a peripheral input port. off is the
// register offset within the device; if the device's base was registered,
// the covered words' provenance is defined so the CPU's subsequent MMIO
// load links to this event.
func (o *Observer) OnInput(dev string, off, n uint32, port string, v uint32, t core.Tag) {
	o.Checks.Input++
	ev := core.TaintEvent{Kind: core.EvInput, Port: port, Value: v, Tag: t}
	if base, ok := o.ports[dev]; ok {
		ev.Addr = base + off
		s := o.emit(ev)
		for a := ev.Addr &^ 3; a < ev.Addr+n; a += 4 {
			o.memSrc[a>>2] = s
		}
		return
	}
	o.emit(ev)
}

// OnOutput records a byte leaving through an output port after passing its
// clearance check, linked to the store (or DMA burst) that delivered it.
func (o *Observer) OnOutput(port string, v byte, t core.Tag) {
	o.Checks.Output++
	o.m.Add("io."+port+".bytes", 1)
	o.emit(core.TaintEvent{
		Kind: core.EvOutput, Port: port, Value: uint32(v), Tag: t, Prev: o.lastOut,
	})
}

// OnDMA records one burst of a DMA transfer, carrying the source words'
// provenance to the destination words.
func (o *Observer) OnDMA(dev string, src, dst, n uint32, t core.Tag) {
	s := o.emit(core.TaintEvent{
		Kind: core.EvDMA, Addr: dst, Value: n, Tag: t, Port: dev,
		Prev: o.memSrc[src>>2],
	})
	for a := dst &^ 3; a < dst+n; a += 4 {
		o.memSrc[a>>2] = s
	}
	o.lastOut = s
}

// OnDeclassify records the AES engine lowering the class of its output
// block, linked to the provenance of its input block.
func (o *Observer) OnDeclassify(dev string, inOff, inLen, outOff, outLen uint32, from, to core.Tag) {
	ev := core.TaintEvent{Kind: core.EvDeclassify, Tag: to, Value: uint32(from), Port: dev}
	base, ok := o.ports[dev]
	if ok {
		ev.Addr = base + outOff
		for a := base + inOff; a < base+inOff+inLen; a += 4 {
			if s := o.memSrc[a>>2]; s > ev.Prev {
				ev.Prev = s
			}
		}
	}
	s := o.emit(ev)
	if ok {
		for a := (base + outOff) &^ 3; a < base+outOff+outLen; a += 4 {
			o.memSrc[a>>2] = s
		}
	}
}

// BusSink returns a tlm.Monitor callback recording the device's completed
// transactions as bus events and counting moved bytes.
func (o *Observer) BusSink(dev string) func(tlm.Transaction) {
	base := o.ports[dev]
	return func(tr tlm.Transaction) {
		o.busTxns++
		kind := core.EvBusRead
		if tr.Cmd == tlm.Write {
			kind = core.EvBusWrite
			o.busWrite += uint64(len(tr.Data))
		} else {
			o.busRead += uint64(len(tr.Data))
		}
		ev := core.TaintEvent{Kind: kind, Addr: base + tr.Addr, Port: dev}
		var t core.Tag
		for i, b := range tr.Data {
			if i < 4 {
				ev.Value |= uint32(b.V) << (8 * i)
			}
			if o.lat != nil {
				t = o.lat.LUB(t, b.T)
			} else if b.T > t {
				t = b.T
			}
		}
		ev.Tag = t
		o.emit(ev)
	}
}

// MetricsSnapshot returns every counter the observer holds — the named
// registry plus the built-in event, check, LUB, bus, and violation
// counters — as a flat map. The platform adds its own gauges (instructions
// retired, simulated time, decode-cache fills) on top; use
// soc.Platform.MetricsSnapshot or vpdift.Result.Metrics for the full set.
func (o *Observer) MetricsSnapshot() map[string]uint64 {
	m := make(map[string]uint64, len(o.violations)+16)
	o.MetricsSnapshotInto(m)
	return m
}

// MetricsSnapshotInto writes every counter the observer holds into dst,
// overwriting colliding keys and allocating nothing once dst has seen the
// key set before. The telemetry sampler calls this once per simulated
// sampling period, so a multi-hour run must not churn one map per sample.
func (o *Observer) MetricsSnapshotInto(dst map[string]uint64) {
	o.m.SnapshotInto(dst)
	dst["obs.events"] = o.seq
	dst["obs.evicted"] = o.evicted
	dst["obs.pinned"] = uint64(len(o.pinned))
	dst["lub_ops"] = o.lubs
	dst["checks.fetch"] = o.Checks.Fetch
	dst["checks.branch"] = o.Checks.Branch
	dst["checks.mem_addr"] = o.Checks.MemAddr
	dst["checks.store"] = o.Checks.Store
	dst["checks.output"] = o.Checks.Output
	dst["checks.input"] = o.Checks.Input
	dst["bus.txns"] = o.busTxns
	dst["bus.read_bytes"] = o.busRead
	dst["bus.write_bytes"] = o.busWrite
	for k, n := range o.violations {
		dst[k] = n
	}
}
