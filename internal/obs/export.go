package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"vpdift/internal/core"
)

// WriteJSONL streams the live events (pinned roots plus ring contents) as
// one JSON object per line, in sequence order. Kind is rendered as its
// string name; class names are resolved separately via Lattice.
func (o *Observer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range o.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (load the output at chrome://tracing or https://ui.perfetto.dev).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the live events in Chrome trace_event format,
// keyed by simulated time (1 trace µs == 1 simulated µs). Each event kind
// gets its own thread row so propagation, I/O, and checks separate visually.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	events := o.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		args := map[string]any{
			"seq":   ev.Seq,
			"value": fmt.Sprintf("0x%x", ev.Value),
		}
		if o.lat != nil {
			args["class"] = o.lat.Name(ev.Tag)
		} else {
			args["tag"] = ev.Tag
		}
		if ev.PC != 0 {
			args["pc"] = fmt.Sprintf("0x%08x", ev.PC)
		}
		if ev.Addr != 0 {
			args["addr"] = fmt.Sprintf("0x%08x", ev.Addr)
		}
		if ev.Port != "" {
			args["port"] = ev.Port
		}
		if ev.Prev != 0 {
			args["prev"] = ev.Prev
		}
		if ev.Prev2 != 0 {
			args["prev2"] = ev.Prev2
		}
		name := ev.Kind.String()
		if ev.Port != "" {
			name += " " + ev.Port
		}
		out = append(out, chromeEvent{
			Name: name,
			Ph:   "i",
			Ts:   float64(ev.Time) / 1000.0,
			Pid:  1,
			Tid:  int(ev.Kind),
			S:    "t",
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// FormatEvents renders events one per line with class names resolved
// against l (may be nil); annotate may add per-event context.
func FormatEvents(events []core.TaintEvent, l *core.Lattice, annotate func(core.TaintEvent) string) string {
	var b strings.Builder
	for _, ev := range events {
		b.WriteString(ev.Format(l, annotate))
		b.WriteString("\n")
	}
	return b.String()
}
