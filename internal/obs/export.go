package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"vpdift/internal/core"
)

// WriteJSONL streams the live events (pinned roots plus ring contents) as
// one JSON object per line, in sequence order. Kind is rendered as its
// string name; class names are resolved separately via Lattice.
func (o *Observer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range o.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// ChromeEvent is one entry of the Chrome trace_event JSON array format
// (load the output at chrome://tracing or https://ui.perfetto.dev). It is
// exported so internal/trace can merge kernel and bus records with the
// observer's taint events onto one shared timeline.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromePidTaint is the Chrome-trace process id under which taint events are
// emitted; internal/trace places kernel and bus rows under their own pids.
const ChromePidTaint = 1

// ChromeEvents renders the live events as Chrome trace entries, keyed by
// simulated time (1 trace µs == 1 simulated µs). Each event kind gets its
// own thread row so propagation, I/O, and checks separate visually.
func (o *Observer) ChromeEvents() []ChromeEvent {
	events := o.Events()
	out := make([]ChromeEvent, 0, len(events))
	for _, ev := range events {
		args := map[string]any{
			"seq":   ev.Seq,
			"value": fmt.Sprintf("0x%x", ev.Value),
		}
		if o.lat != nil {
			args["class"] = o.lat.Name(ev.Tag)
		} else {
			args["tag"] = ev.Tag
		}
		if ev.PC != 0 {
			args["pc"] = fmt.Sprintf("0x%08x", ev.PC)
		}
		if ev.Addr != 0 {
			args["addr"] = fmt.Sprintf("0x%08x", ev.Addr)
		}
		if ev.Port != "" {
			args["port"] = ev.Port
		}
		if ev.Prev != 0 {
			args["prev"] = ev.Prev
		}
		if ev.Prev2 != 0 {
			args["prev2"] = ev.Prev2
		}
		name := ev.Kind.String()
		if ev.Port != "" {
			name += " " + ev.Port
		}
		out = append(out, ChromeEvent{
			Name: name,
			Ph:   "i",
			Ts:   float64(ev.Time) / 1000.0,
			Pid:  ChromePidTaint,
			Tid:  int(ev.Kind),
			S:    "t",
			Args: args,
		})
	}
	return out
}

// WriteChromeTrace exports the live events in Chrome trace_event format. Use
// trace.WriteChromeTrace to additionally merge kernel and bus records onto
// the same timeline.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(o.ChromeEvents())
}

// FormatEvents renders events one per line with class names resolved
// against l (may be nil); annotate may add per-event context.
func FormatEvents(events []core.TaintEvent, l *core.Lattice, annotate func(core.TaintEvent) string) string {
	var b strings.Builder
	for _, ev := range events {
		b.WriteString(ev.Format(l, annotate))
		b.WriteString("\n")
	}
	return b.String()
}
