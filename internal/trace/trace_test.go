package trace

import (
	"bytes"
	"strings"
	"testing"

	"vpdift/internal/asm"
	"vpdift/internal/kernel"
)

func TestVCDIdentifiers(t *testing.T) {
	if got := vcdID(0); got != "!" {
		t.Fatalf("vcdID(0) = %q", got)
	}
	if got := vcdID(93); got != "~" {
		t.Fatalf("vcdID(93) = %q", got)
	}
	// Two-character codes start past the single-character range and must not
	// collide with it.
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("vcdID collision at %d: %q", i, id)
		}
		seen[id] = true
	}
}

func TestVCDSampleOnChange(t *testing.T) {
	v := NewVCD()
	var a, b uint64
	v.AddProbe("sig a", 8, func() uint64 { return a })
	v.AddProbe("flag", 1, func() uint64 { return b })

	v.Sample(0) // initial dump
	a = 0x42
	v.Sample(10)
	v.Sample(20) // no change: nothing recorded
	a, b = 0x43, 1
	v.Sample(30)

	if v.Changes() != 3 {
		t.Fatalf("changes = %d, want 3", v.Changes())
	}
	var out bytes.Buffer
	if err := v.Dump(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 8 ! sig_a [7:0] $end", // space sanitized
		"$var wire 1 \" flag $end",
		"$dumpvars",
		"#10\nb1000010 !",
		"#30\nb1000011 !\n1\"",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("VCD output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "#20") {
		t.Fatalf("VCD recorded a timestamp with no changes:\n%s", s)
	}
}

func TestVCDWidthMask(t *testing.T) {
	v := NewVCD()
	val := uint64(0x1ff)
	v.AddProbe("narrow", 8, func() uint64 { return val })
	v.Sample(0)
	val = 0x2ff // same low 8 bits: masked, so no change
	v.Sample(5)
	if v.Changes() != 0 {
		t.Fatalf("masked value recorded a change")
	}
}

func TestKernelTraceRing(t *testing.T) {
	k := NewKernelTrace(4)
	for i := 0; i < 7; i++ {
		k.ThreadRun("t", kernel.Time(i))
	}
	if k.EventCount() != 7 || k.Dropped() != 3 {
		t.Fatalf("count=%d dropped=%d", k.EventCount(), k.Dropped())
	}
	evs := k.Events()
	if len(evs) != 4 {
		t.Fatalf("live events = %d", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(4 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestKernelTraceJSONLDeterminism(t *testing.T) {
	emit := func() []byte {
		k := NewKernelTrace(0)
		k.ThreadSpawn("cpu", 0)
		k.EventNotify("irq", 5, 5, 1)
		k.ThreadWake("cpu", 5, 5)
		k.TimeAdvance(0, 5)
		k.ThreadRun("cpu", 5)
		k.ThreadPause("cpu", 45)
		var b bytes.Buffer
		if err := k.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical event sequences produced different JSONL")
	}
}

// retire feeds the profiler a straight-line run of n instructions starting
// at pc, returning the next pc.
func retire(p *Profiler, pc uint32, n int) uint32 {
	for i := 0; i < n; i++ {
		p.OnRetire(pc, 0x13) // addi x0,x0,0
		pc += 4
	}
	return pc
}

const (
	insnJALRA   = 0x000000ef // jal ra, 0
	insnRet     = 0x00008067 // jalr x0, 0(ra)
	insnJALRRA1 = 0x000080e7 // jalr ra, 0(ra)
)

func TestProfilerCallReturn(t *testing.T) {
	p := NewProfiler(0x1000, 0x1000)
	img := &asm.Image{Symbols: map[string]uint32{
		"main": 0x1000, "leaf": 0x1800,
	}}
	p.SetImage(img)

	// main: 3 straight insns, a call, 2 more, then halt-ish padding.
	pc := retire(p, 0x1000, 3)
	p.OnRetire(pc, insnJALRA) // call
	// leaf body: 5 insns then return.
	lpc := retire(p, 0x1800, 5)
	p.OnRetire(lpc, insnRet)
	// back in main
	retire(p, pc+4, 4)

	if p.Total() != 14 {
		t.Fatalf("total = %d", p.Total())
	}
	stats := p.Stats()
	byName := map[string]FuncStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if byName["main"].Flat != 8 {
		t.Fatalf("main flat = %d, want 8", byName["main"].Flat)
	}
	if byName["leaf"].Flat != 6 {
		t.Fatalf("leaf flat = %d, want 6", byName["leaf"].Flat)
	}
	// leaf's cumulative span covers its 5 body insns plus the return jalr.
	if byName["leaf"].Cum != 6 {
		t.Fatalf("leaf cum = %d, want 6", byName["leaf"].Cum)
	}
	if att := p.Attributed(); att != 1.0 {
		t.Fatalf("attributed = %v, want 1.0", att)
	}
	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	fs := folded.String()
	if !strings.Contains(fs, "(root);leaf 6") {
		t.Fatalf("folded output missing leaf frame:\n%s", fs)
	}
}

func TestProfilerRecursionGuard(t *testing.T) {
	p := NewProfiler(0x1000, 0x1000)
	// f calls itself twice, then unwinds. The recursive re-entries must not
	// double-count the cumulative span.
	p.OnRetire(0x1000, insnJALRA) // enter via call marker
	p.OnRetire(0x1100, insnJALRA) // f entry; immediately recurses
	p.OnRetire(0x1100, insnJALRA) // f entry (depth 2)
	p.OnRetire(0x1100, insnRet)   // f entry (depth 3), returns
	p.OnRetire(0x1104, insnRet)   // depth 2 resumes, returns
	p.OnRetire(0x1104, insnRet)   // depth 1 resumes, returns
	p.OnRetire(0x1008, 0x13)      // top level resumes
	cum := p.finalize()
	if cum[0x1100] > p.Total() {
		t.Fatalf("recursive cum %d exceeds total %d", cum[0x1100], p.Total())
	}
}

func TestProfilerIndirectCall(t *testing.T) {
	p := NewProfiler(0x1000, 0x1000)
	img := &asm.Image{Symbols: map[string]uint32{"main": 0x1000, "handler": 0x1c00}}
	p.SetImage(img)
	retire(p, 0x1000, 2)
	p.OnRetire(0x1008, insnJALRRA1) // indirect call through ra
	retire(p, 0x1c00, 3)            // lands in handler
	var b bytes.Buffer
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(root);handler") {
		t.Fatalf("indirect call not attributed:\n%s", b.String())
	}
}

func TestTraceNilViews(t *testing.T) {
	// A zero Trace must be safe as a kernel.Tracer and report inactive.
	tr := &Trace{}
	if tr.Active() {
		t.Fatal("zero Trace is active")
	}
	var nilTr *Trace
	if nilTr.Active() {
		t.Fatal("nil Trace is active")
	}
	tr.ThreadSpawn("x", 0)
	tr.ThreadRun("x", 0)
	tr.ThreadPause("x", 1)
	tr.ThreadWake("x", 1, 2)
	tr.EventNotify("e", 1, 2, 0)
	tr.TimeAdvance(1, 2)
}

func TestWriteChromeTraceMergesSources(t *testing.T) {
	k := NewKernelTrace(0)
	k.ThreadSpawn("cpu", 0)
	k.ThreadRun("cpu", 0)
	k.ThreadPause("cpu", 40)
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, k, nil); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	for _, want := range []string{`"ph":"X"`, `"name":"kernel"`, `"dur":`} {
		if !strings.Contains(s, want) {
			t.Fatalf("chrome output missing %s:\n%s", want, s)
		}
	}
	// Nil sources still produce a valid (empty) JSON array.
	b.Reset()
	if err := WriteChromeTrace(&b, nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("empty trace = %q", b.String())
	}
}
