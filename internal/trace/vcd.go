package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Probe is one traced signal: a name, a bit width, and a sampling function
// reading the current value from the platform (a peripheral register, a
// memory word, a per-location taint tag). The analog of one sc_trace call.
type Probe struct {
	Name  string
	Width int // 1..64 bits
	Read  func() uint64
}

// vcdChange is one recorded value change.
type vcdChange struct {
	t     uint64 // simulated ns
	probe int
	value uint64
}

// VCD collects value changes from registered probes and writes a
// GTKWave-compatible Value Change Dump. Probes are polled by Sample — the
// platform calls it at every scheduler pause and clock advance, so any state
// change made by guest code or simulation callbacks is captured at its
// simulated timestamp. Only changes are recorded, like sc_trace: a probe
// that holds its value costs nothing after the initial dump.
//
// The header carries no date or tool-version stamp, so two identical
// simulations produce byte-identical files.
type VCD struct {
	probes []Probe
	last   []uint64
	init   []uint64
	primed bool
	chgs   []vcdChange
}

// NewVCD creates an empty waveform collector.
func NewVCD() *VCD { return &VCD{} }

// AddProbe registers a signal. Width is clamped to [1, 64]. Must be called
// before the first Sample; names are sanitized for the VCD identifier
// grammar (whitespace becomes '_').
func (v *VCD) AddProbe(name string, width int, read func() uint64) {
	if width < 1 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	v.probes = append(v.probes, Probe{Name: sanitizeVCDName(name), Width: width, Read: read})
	v.last = append(v.last, 0)
}

// ProbeCount returns the number of registered probes.
func (v *VCD) ProbeCount() int { return len(v.probes) }

// Changes returns the number of recorded value changes (initial dump
// excluded).
func (v *VCD) Changes() int { return len(v.chgs) }

// Sample polls every probe at simulated time t (ns) and records the ones
// whose value changed. The first call records all probe values as the
// initial dump.
func (v *VCD) Sample(t uint64) {
	if !v.primed {
		v.init = make([]uint64, len(v.probes))
		for i := range v.probes {
			val := v.probes[i].Read() & widthMask(v.probes[i].Width)
			v.init[i] = val
			v.last[i] = val
		}
		v.primed = true
		return
	}
	for i := range v.probes {
		val := v.probes[i].Read() & widthMask(v.probes[i].Width)
		if val != v.last[i] {
			v.last[i] = val
			v.chgs = append(v.chgs, vcdChange{t: t, probe: i, value: val})
		}
	}
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// sanitizeVCDName keeps probe names inside the VCD identifier grammar.
func sanitizeVCDName(name string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			return '_'
		}
		return r
	}, name)
}

// vcdID returns the short identifier code for probe i: printable ASCII
// '!'..'~' in a little-endian base-94 encoding, as GTKWave expects.
func vcdID(i int) string {
	var b []byte
	for {
		b = append(b, byte('!'+i%94))
		i /= 94
		if i == 0 {
			return string(b)
		}
		i--
	}
}

// writeValue renders a value change in VCD syntax: scalars as "0!"/"1!",
// vectors as "b1010 !".
func writeValue(w *bufio.Writer, width int, val uint64, id string) {
	if width == 1 {
		w.WriteByte(byte('0' + val&1))
		w.WriteString(id)
		w.WriteByte('\n')
		return
	}
	w.WriteByte('b')
	w.WriteString(fmt.Sprintf("%b", val))
	w.WriteByte(' ')
	w.WriteString(id)
	w.WriteByte('\n')
}

// Dump writes the collected waveform as a VCD file with a 1 ns timescale.
// Call after the simulation finishes (and after a final Sample if the last
// state matters).
func (v *VCD) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("$timescale 1ns $end\n")
	bw.WriteString("$scope module vp $end\n")
	for i, p := range v.probes {
		kind := "wire"
		if p.Width > 1 {
			fmt.Fprintf(bw, "$var %s %d %s %s [%d:0] $end\n", kind, p.Width, vcdID(i), p.Name, p.Width-1)
		} else {
			fmt.Fprintf(bw, "$var %s 1 %s %s $end\n", kind, vcdID(i), p.Name)
		}
	}
	bw.WriteString("$upscope $end\n")
	bw.WriteString("$enddefinitions $end\n")
	bw.WriteString("$dumpvars\n")
	for i, p := range v.probes {
		var val uint64
		if v.primed {
			val = v.init[i]
		}
		writeValue(bw, p.Width, val, vcdID(i))
	}
	bw.WriteString("$end\n")
	lastT := ^uint64(0)
	for _, c := range v.chgs {
		if c.t != lastT {
			fmt.Fprintf(bw, "#%d\n", c.t)
			lastT = c.t
		}
		writeValue(bw, v.probes[c.probe].Width, c.value, vcdID(c.probe))
	}
	return bw.Flush()
}
