package trace

import (
	"encoding/json"
	"io"

	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// EventKind discriminates recorded simulation-side events.
type EventKind uint8

// Simulation-side event kinds.
const (
	// EvThreadSpawn: a kernel process was created.
	EvThreadSpawn EventKind = iota + 1
	// EvThreadRun: the scheduler dispatched a process.
	EvThreadRun
	// EvThreadPause: a process yielded (Wait, WaitEvent, or body return).
	EvThreadPause
	// EvThreadWake: a process was scheduled to resume at Event.To.
	EvThreadWake
	// EvNotify: an sc_event-style notification fired.
	EvNotify
	// EvTimeAdvance: the simulated clock moved; work between two advances at
	// one timestamp forms that timestamp's delta cycles.
	EvTimeAdvance
	// EvBusTxn: a TLM bus transaction completed.
	EvBusTxn
)

// String returns a short identifier for the kind.
func (k EventKind) String() string {
	switch k {
	case EvThreadSpawn:
		return "spawn"
	case EvThreadRun:
		return "run"
	case EvThreadPause:
		return "pause"
	case EvThreadWake:
		return "wake"
	case EvNotify:
		return "notify"
	case EvTimeAdvance:
		return "advance"
	case EvBusTxn:
		return "bus"
	default:
		return "event"
	}
}

// MarshalText renders the kind name into JSON exports.
func (k EventKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one recorded kernel or bus occurrence. Field use by kind:
//
//   - thread events: Name is the process name; To is the wake-up time for
//     EvThreadWake.
//   - EvNotify: Name is the event name, To the delivery time, Waiters the
//     number of woken processes.
//   - EvTimeAdvance: At -> To is the clock step.
//   - EvBusTxn: Name is the decoded bus range ("" for unmapped), From the
//     initiator, Cmd/Addr/Len/Resp describe the completed payload.
type Event struct {
	Seq     uint64    `json:"seq"`
	Kind    EventKind `json:"kind"`
	At      uint64    `json:"at"` // simulated ns
	Name    string    `json:"name,omitempty"`
	To      uint64    `json:"to,omitempty"`
	Waiters int       `json:"waiters,omitempty"`
	From    string    `json:"from,omitempty"`
	Cmd     string    `json:"cmd,omitempty"`
	Addr    uint32    `json:"addr,omitempty"`
	Len     int       `json:"len,omitempty"`
	Resp    string    `json:"resp,omitempty"`
}

// DefaultKernelLimit bounds the kernel-trace ring buffer.
const DefaultKernelLimit = 1 << 20

// KernelTrace records the simulation side of the platform — scheduler
// activity and TLM bus transactions — the visibility a SystemC VP gets from
// its kernel's process tracing. It implements kernel.Tracer; attach it via
// trace.Trace and soc.Config.Trace. Events live in a bounded ring: once
// Limit entries are recorded, each new event evicts the oldest (counted by
// Dropped), so arbitrarily long runs stay bounded.
type KernelTrace struct {
	limit   int
	ring    []Event
	seq     uint64
	dropped uint64
}

// NewKernelTrace creates a recorder keeping at most limit events (<= 0 means
// DefaultKernelLimit).
func NewKernelTrace(limit int) *KernelTrace {
	if limit <= 0 {
		limit = DefaultKernelLimit
	}
	return &KernelTrace{limit: limit}
}

func (k *KernelTrace) emit(ev Event) {
	k.seq++
	ev.Seq = k.seq
	if len(k.ring) < k.limit {
		k.ring = append(k.ring, ev)
		return
	}
	k.ring[int((ev.Seq-1)%uint64(k.limit))] = ev
	k.dropped++
}

// ThreadSpawn implements kernel.Tracer.
func (k *KernelTrace) ThreadSpawn(name string, at kernel.Time) {
	k.emit(Event{Kind: EvThreadSpawn, At: uint64(at), Name: name})
}

// ThreadRun implements kernel.Tracer.
func (k *KernelTrace) ThreadRun(name string, at kernel.Time) {
	k.emit(Event{Kind: EvThreadRun, At: uint64(at), Name: name})
}

// ThreadPause implements kernel.Tracer.
func (k *KernelTrace) ThreadPause(name string, at kernel.Time) {
	k.emit(Event{Kind: EvThreadPause, At: uint64(at), Name: name})
}

// ThreadWake implements kernel.Tracer.
func (k *KernelTrace) ThreadWake(name string, at, wakeAt kernel.Time) {
	k.emit(Event{Kind: EvThreadWake, At: uint64(at), Name: name, To: uint64(wakeAt)})
}

// EventNotify implements kernel.Tracer.
func (k *KernelTrace) EventNotify(event string, at, deliverAt kernel.Time, waiters int) {
	k.emit(Event{Kind: EvNotify, At: uint64(at), Name: event, To: uint64(deliverAt), Waiters: waiters})
}

// TimeAdvance implements kernel.Tracer.
func (k *KernelTrace) TimeAdvance(from, to kernel.Time) {
	k.emit(Event{Kind: EvTimeAdvance, At: uint64(from), To: uint64(to)})
}

// BusHook returns the tlm.Bus trace callback recording every routed
// transaction with its decoded range name, initiator, and completion status,
// timestamped from sim.
func (k *KernelTrace) BusHook(sim *kernel.Simulator) func(rangeName string, p *tlm.Payload) {
	return func(rangeName string, p *tlm.Payload) {
		k.emit(Event{
			Kind: EvBusTxn, At: uint64(sim.Now()), Name: rangeName,
			From: p.From, Cmd: p.Cmd.String(), Addr: p.Addr,
			Len: len(p.Data), Resp: p.Resp.String(),
		})
	}
}

// Events returns the live events in sequence order.
func (k *KernelTrace) Events() []Event {
	out := make([]Event, 0, len(k.ring))
	if k.seq <= uint64(len(k.ring)) {
		return append(out, k.ring...)
	}
	// Ring wrapped: the oldest live event sits just past the newest slot.
	start := int(k.seq % uint64(k.limit))
	out = append(out, k.ring[start:]...)
	out = append(out, k.ring[:start]...)
	return out
}

// EventCount returns the total number of events recorded, evicted included.
func (k *KernelTrace) EventCount() uint64 { return k.seq }

// Dropped returns how many events were evicted from the ring.
func (k *KernelTrace) Dropped() uint64 { return k.dropped }

// WriteJSONL streams the live events as one JSON object per line. The output
// is deterministic: two identical simulations produce byte-identical streams.
func (k *KernelTrace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range k.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
