package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"vpdift/internal/asm"
)

// profFrame is one entry of the profiler's shadow call stack.
type profFrame struct {
	entry     uint32 // callee entry pc (first retired pc after the call)
	startTot  uint64 // retire count when the frame was entered
	recursive bool   // entry already appears lower on the stack
}

// Profiler is the guest hot-path profiler: it hangs off the cores' Retire
// hook and buckets retired instructions ("cycles" at the paper's one
// instruction per 10 ns clock) by pc. Because the model retires exactly one
// instruction per fetch, the flat histogram is an exact cycle attribution,
// not a statistical sample.
//
// Call and return edges are tracked architecturally: a jal/jalr writing the
// link register (x1/x5) marks a pending call, a jalr through the link
// register with rd=x0 marks a pending return, and the *next* retired pc
// resolves the edge — the callee entry for a call, the resume point for a
// return. That deferred resolution is what makes indirect calls (jalr
// through a function pointer) attribute correctly without decoding operand
// values. The shadow stack yields self-vs-cumulative counts and folded
// stacks for flamegraph tools.
//
// Symbolization is deferred to report time via asm.Image.SymbolAt, so the
// per-retire cost is a couple of array writes.
type Profiler struct {
	img *asm.Image

	// Flat histogram: counts[i] covers pc base+4*i; far catches retires
	// outside [base, base+4*len(counts)) (should not happen on this SoC).
	base   uint32
	counts []uint64
	far    map[uint32]uint64
	total  uint64

	// Call tracking state.
	pendingCall bool
	pendingRet  bool
	stack       []profFrame
	cum         map[uint32]uint64 // callee entry -> cumulative retires
	folded      map[string]uint64 // stack signature -> retires
	curKey      string
	lastFlush   uint64
}

// NewProfiler creates a profiler covering the pc window [base, base+size).
// size is in bytes and rounded up to a word; retires outside the window fall
// back to a map.
func NewProfiler(base, size uint32) *Profiler {
	return &Profiler{
		base:   base,
		counts: make([]uint64, (size+3)/4),
		far:    make(map[uint32]uint64),
		cum:    make(map[uint32]uint64),
		folded: make(map[string]uint64),
	}
}

// SetImage attaches the loaded guest image for report-time symbolization.
func (p *Profiler) SetImage(img *asm.Image) { p.img = img }

// OnRetire is the core Retire hook. pc is the address of the retired
// instruction, insn its encoding.
func (p *Profiler) OnRetire(pc, insn uint32) {
	// Resolve the edge opened by the previous instruction: the current pc is
	// the callee entry (call) or the caller resume point (return).
	if p.pendingCall {
		p.pendingCall = false
		p.flushFolded()
		rec := false
		for i := range p.stack {
			if p.stack[i].entry == pc {
				rec = true
				break
			}
		}
		p.stack = append(p.stack, profFrame{entry: pc, startTot: p.total, recursive: rec})
		p.rebuildKey()
	} else if p.pendingRet {
		p.pendingRet = false
		if n := len(p.stack); n > 0 {
			p.flushFolded()
			f := p.stack[n-1]
			p.stack = p.stack[:n-1]
			if !f.recursive {
				p.cum[f.entry] += p.total - f.startTot
			}
			p.rebuildKey()
		}
	}

	p.total++
	if i := (pc - p.base) >> 2; uint64(i) < uint64(len(p.counts)) && pc >= p.base {
		p.counts[i]++
	} else {
		p.far[pc]++
	}

	// Classify this instruction for the next retire. RISC-V convention:
	// writing x1/x5 is a call, jalr x0, 0(x1|x5) is a return.
	switch insn & 0x7f {
	case 0x6f: // jal
		rd := insn >> 7 & 31
		p.pendingCall = rd == 1 || rd == 5
	case 0x67: // jalr
		rd := insn >> 7 & 31
		rs1 := insn >> 15 & 31
		if rd == 1 || rd == 5 {
			p.pendingCall = true
		} else if rd == 0 && (rs1 == 1 || rs1 == 5) {
			p.pendingRet = true
		}
	}
}

// flushFolded charges the retires since the last stack change to the
// current stack signature.
func (p *Profiler) flushFolded() {
	if p.total > p.lastFlush {
		p.folded[p.curKey] += p.total - p.lastFlush
		p.lastFlush = p.total
	}
}

// rebuildKey recomputes the folded-stack signature (semicolon-joined entry
// addresses, root first).
func (p *Profiler) rebuildKey() {
	var b strings.Builder
	for i := range p.stack {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%x", p.stack[i].entry)
	}
	p.curKey = b.String()
}

// Total returns the number of retired instructions observed.
func (p *Profiler) Total() uint64 { return p.total }

// finalize flushes the folded accumulator and credits still-open frames
// with the retires up to now, returning a cumulative map that includes
// them. The live state is not consumed; finalize may be called repeatedly.
func (p *Profiler) finalize() map[uint32]uint64 {
	p.flushFolded()
	cum := make(map[uint32]uint64, len(p.cum))
	for k, v := range p.cum {
		cum[k] = v
	}
	for _, f := range p.stack {
		if !f.recursive {
			cum[f.entry] += p.total - f.startTot
		}
	}
	return cum
}

// symbolize names an address via the attached image: "main", "delay+0x8",
// or "0x80000123" without an image or symbol.
func (p *Profiler) symbolize(addr uint32) string {
	if p.img != nil {
		if name, off, ok := p.img.SymbolAt(addr); ok {
			if off == 0 {
				return name
			}
			return fmt.Sprintf("%s+0x%x", name, off)
		}
	}
	return fmt.Sprintf("0x%08x", addr)
}

// funcOf maps a pc to its containing symbol name (offset dropped), or a hex
// literal when unknown.
func (p *Profiler) funcOf(pc uint32) (string, bool) {
	if p.img != nil {
		if name, _, ok := p.img.SymbolAt(pc); ok {
			return name, true
		}
	}
	return fmt.Sprintf("0x%08x", pc), false
}

// eachPC visits every nonzero flat bucket.
func (p *Profiler) eachPC(f func(pc uint32, n uint64)) {
	for i, n := range p.counts {
		if n != 0 {
			f(p.base+uint32(i)<<2, n)
		}
	}
	for pc, n := range p.far {
		f(pc, n)
	}
}

// Attributed returns the fraction of retired instructions whose pc resolves
// to a named symbol in the attached image (0 when nothing retired).
func (p *Profiler) Attributed() float64 {
	if p.total == 0 {
		return 0
	}
	var named uint64
	p.eachPC(func(pc uint32, n uint64) {
		if _, ok := p.funcOf(pc); ok {
			named += n
		}
	})
	return float64(named) / float64(p.total)
}

// FuncStat is one row of the top table.
type FuncStat struct {
	Name string
	Flat uint64 // retires at pcs inside the function
	Cum  uint64 // retires while the function was on the call stack
}

// Stats aggregates per-function flat and cumulative counts, sorted by flat
// count descending (ties by name).
func (p *Profiler) Stats() []FuncStat {
	flat := make(map[string]uint64)
	p.eachPC(func(pc uint32, n uint64) {
		name, _ := p.funcOf(pc)
		flat[name] += n
	})
	cum := make(map[string]uint64)
	for entry, n := range p.finalize() {
		name, _ := p.funcOf(entry)
		if n > cum[name] {
			cum[name] = n // recursion-adjacent entries: keep the widest span
		}
	}
	out := make([]FuncStat, 0, len(flat))
	for name, n := range flat {
		c := cum[name]
		if c < n {
			c = n // a function covers at least its own retires
		}
		out = append(out, FuncStat{Name: name, Flat: n, Cum: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Hottest returns the function with the most flat retires.
func (p *Profiler) Hottest() (name string, flat uint64) {
	st := p.Stats()
	if len(st) == 0 {
		return "", 0
	}
	return st[0].Name, st[0].Flat
}

// WriteTop writes a pprof-style top table of at most n functions (n <= 0
// means all).
func (p *Profiler) WriteTop(w io.Writer, n int) error {
	st := p.Stats()
	if n > 0 && len(st) > n {
		st = st[:n]
	}
	total := p.total
	if total == 0 {
		total = 1
	}
	if _, err := fmt.Fprintf(w, "%12s %7s %12s %7s  %s\n", "flat", "flat%", "cum", "cum%", "function"); err != nil {
		return err
	}
	for _, s := range st {
		_, err := fmt.Fprintf(w, "%12d %6.2f%% %12d %6.2f%%  %s\n",
			s.Flat, 100*float64(s.Flat)/float64(total),
			s.Cum, 100*float64(s.Cum)/float64(total), s.Name)
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%12d retired instructions total\n", p.total)
	return err
}

// WriteFolded writes the collapsed call stacks in the "folded" format
// flamegraph tools consume: "root;funcA;funcB count" per line, sorted for
// determinism. The implicit root frame covers retires before the first call
// (crt0 and top-level code).
func (p *Profiler) WriteFolded(w io.Writer) error {
	p.flushFolded()
	// Also charge the open tail of the run to the current stack.
	lines := make(map[string]uint64, len(p.folded))
	for k, v := range p.folded {
		lines[p.symbolizeKey(k)] += v
	}
	keys := make([]string, 0, len(lines))
	for k := range lines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, lines[k]); err != nil {
			return err
		}
	}
	return nil
}

// symbolizeKey converts a hex-address stack signature into a
// semicolon-joined symbol path rooted at "(root)".
func (p *Profiler) symbolizeKey(key string) string {
	var b strings.Builder
	b.WriteString("(root)")
	if key == "" {
		return b.String()
	}
	for _, part := range strings.Split(key, ";") {
		var addr uint32
		fmt.Sscanf(part, "%x", &addr)
		b.WriteByte(';')
		b.WriteString(p.symbolize(addr))
	}
	return b.String()
}
