package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"vpdift/internal/obs"
)

// Chrome-trace process ids: obs.ChromePidTaint (1) carries taint events; the
// kernel and bus rows use their own processes so the three views separate
// cleanly in the viewer while sharing one time axis.
const (
	ChromePidKernel = 0
	ChromePidBus    = 2
)

// kernelChromeEvents converts recorded kernel/bus events into Chrome trace
// entries: thread run..pause windows become complete spans, notifications
// and wakes become instants on their thread rows, and bus transactions
// become instants on one row per decoded range. Metadata entries name the
// processes and threads.
func kernelChromeEvents(kt *KernelTrace) []obs.ChromeEvent {
	events := kt.Events()
	out := make([]obs.ChromeEvent, 0, len(events)+8)
	out = append(out,
		obs.ChromeEvent{Name: "process_name", Ph: "M", Pid: ChromePidKernel,
			Args: map[string]any{"name": "kernel"}},
		obs.ChromeEvent{Name: "process_name", Ph: "M", Pid: ChromePidBus,
			Args: map[string]any{"name": "bus"}},
	)

	// Stable small ids per thread / bus range, in order of first appearance.
	threadTid := map[string]int{}
	tidOf := func(pid int, name string, m map[string]int) int {
		id, ok := m[name]
		if !ok {
			id = len(m) + 1
			m[name] = id
			out = append(out, obs.ChromeEvent{Name: "thread_name", Ph: "M",
				Pid: pid, Tid: id, Args: map[string]any{"name": name}})
		}
		return id
	}
	busTid := map[string]int{}

	us := func(ns uint64) float64 { return float64(ns) / 1000.0 }
	running := map[string]uint64{} // thread -> run start (ns)
	for _, ev := range events {
		switch ev.Kind {
		case EvThreadSpawn:
			out = append(out, obs.ChromeEvent{Name: "spawn", Ph: "i", Ts: us(ev.At),
				Pid: ChromePidKernel, Tid: tidOf(ChromePidKernel, ev.Name, threadTid), S: "t",
				Args: map[string]any{"seq": ev.Seq}})
		case EvThreadRun:
			running[ev.Name] = ev.At
		case EvThreadPause:
			if start, ok := running[ev.Name]; ok {
				delete(running, ev.Name)
				out = append(out, obs.ChromeEvent{Name: "run", Ph: "X", Ts: us(start),
					Dur: us(ev.At - start),
					Pid: ChromePidKernel, Tid: tidOf(ChromePidKernel, ev.Name, threadTid)})
			}
		case EvThreadWake:
			out = append(out, obs.ChromeEvent{Name: "wake", Ph: "i", Ts: us(ev.At),
				Pid: ChromePidKernel, Tid: tidOf(ChromePidKernel, ev.Name, threadTid), S: "t",
				Args: map[string]any{"seq": ev.Seq, "resume_at_ns": ev.To}})
		case EvNotify:
			out = append(out, obs.ChromeEvent{Name: "notify " + ev.Name, Ph: "i", Ts: us(ev.At),
				Pid: ChromePidKernel, Tid: 0, S: "p",
				Args: map[string]any{"seq": ev.Seq, "deliver_at_ns": ev.To, "waiters": ev.Waiters}})
		case EvTimeAdvance:
			// The time axis itself; no entry needed.
		case EvBusTxn:
			row := ev.Name
			if row == "" {
				row = "(unmapped)"
			}
			out = append(out, obs.ChromeEvent{
				Name: fmt.Sprintf("%s %s", ev.From, ev.Cmd), Ph: "i", Ts: us(ev.At),
				Pid: ChromePidBus, Tid: tidOf(ChromePidBus, row, busTid), S: "t",
				Args: map[string]any{
					"seq": ev.Seq, "addr": fmt.Sprintf("0x%08x", ev.Addr),
					"len": ev.Len, "resp": ev.Resp,
				},
			})
		}
	}
	// Threads still running at trace end: emit an open span of zero length
	// at the start point so the dispatch remains visible.
	for name, start := range running {
		out = append(out, obs.ChromeEvent{Name: "run (open)", Ph: "i", Ts: us(start),
			Pid: ChromePidKernel, Tid: tidOf(ChromePidKernel, name, threadTid), S: "t"})
	}
	return out
}

// WriteChromeTrace writes one Chrome trace_event JSON array combining the
// kernel/bus records with the observer's taint events, so scheduler
// activity, bus transactions and information flow line up on a single
// timeline (1 trace µs == 1 simulated µs). Either source may be nil.
func WriteChromeTrace(w io.Writer, kt *KernelTrace, o *obs.Observer) error {
	var all []obs.ChromeEvent
	if kt != nil {
		all = append(all, kernelChromeEvents(kt)...)
	}
	if o != nil {
		all = append(all,
			obs.ChromeEvent{Name: "process_name", Ph: "M", Pid: obs.ChromePidTaint,
				Args: map[string]any{"name": "taint"}})
		all = append(all, o.ChromeEvents()...)
	}
	if all == nil {
		all = []obs.ChromeEvent{}
	}
	return json.NewEncoder(w).Encode(all)
}
