// Package trace is the simulation-side observability layer of the virtual
// prototype: where internal/obs answers "where did tainted data flow?",
// this package answers "what did the simulator do, and where did the guest
// spend its time?". It provides three coordinated views:
//
//   - KernelTrace: scheduler and TLM bus event recording — the SystemC
//     kernel's process trace, exportable as JSONL or merged with taint
//     events into one Chrome trace timeline (WriteChromeTrace).
//   - VCD: an sc_trace analogue sampling registered probes (peripheral
//     registers, memory words, taint tags) on change into a
//     GTKWave-compatible value change dump keyed by simulated time.
//   - Profiler: a retire-hook histogram attributing guest cycles to
//     functions via the image symbol table, with self/cumulative counts
//     and folded stacks for flamegraphs.
//
// All three follow the nil-hook discipline: a platform built without a
// Trace (or with unused views left nil) pays one predictable branch per
// hook site and nothing else.
package trace

import (
	"vpdift/internal/kernel"
)

// Trace bundles the enabled views. Leave a field nil to disable that view;
// a zero Trace is valid and records nothing. Trace implements kernel.Tracer
// by forwarding to Kernel and piggybacking VCD sampling on scheduler
// activity: probes are polled whenever a process pauses and whenever the
// simulated clock advances, which brackets every state change a guest or
// callback can make.
type Trace struct {
	Kernel *KernelTrace
	VCD    *VCD
	Prof   *Profiler
}

// Active reports whether any view is enabled.
func (t *Trace) Active() bool {
	return t != nil && (t.Kernel != nil || t.VCD != nil || t.Prof != nil)
}

// ThreadSpawn implements kernel.Tracer.
func (t *Trace) ThreadSpawn(name string, at kernel.Time) {
	if t.Kernel != nil {
		t.Kernel.ThreadSpawn(name, at)
	}
}

// ThreadRun implements kernel.Tracer.
func (t *Trace) ThreadRun(name string, at kernel.Time) {
	if t.Kernel != nil {
		t.Kernel.ThreadRun(name, at)
	}
}

// ThreadPause implements kernel.Tracer. Pausing is the moment a process has
// finished mutating platform state at the current time, so the VCD samples
// here.
func (t *Trace) ThreadPause(name string, at kernel.Time) {
	if t.Kernel != nil {
		t.Kernel.ThreadPause(name, at)
	}
	if t.VCD != nil {
		t.VCD.Sample(uint64(at))
	}
}

// ThreadWake implements kernel.Tracer.
func (t *Trace) ThreadWake(name string, at, wakeAt kernel.Time) {
	if t.Kernel != nil {
		t.Kernel.ThreadWake(name, at, wakeAt)
	}
}

// EventNotify implements kernel.Tracer.
func (t *Trace) EventNotify(event string, at, deliverAt kernel.Time, waiters int) {
	if t.Kernel != nil {
		t.Kernel.EventNotify(event, at, deliverAt, waiters)
	}
}

// TimeAdvance implements kernel.Tracer. Sampling at the old timestamp
// catches changes made by timed callbacks (which run between dispatches,
// after the last pause at that time).
func (t *Trace) TimeAdvance(from, to kernel.Time) {
	if t.Kernel != nil {
		t.Kernel.TimeAdvance(from, to)
	}
	if t.VCD != nil {
		t.VCD.Sample(uint64(from))
	}
}
