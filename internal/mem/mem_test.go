package mem

import (
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

func TestMemoryDefaultTag(t *testing.T) {
	l := core.IFP2()
	li := l.MustTag(core.ClassLI)
	m := New(16, li)
	if m.Size() != 16 {
		t.Errorf("Size = %d", m.Size())
	}
	for i, b := range m.Data() {
		if b.T != li || b.V != 0 {
			t.Fatalf("byte %d = %+v, want zero value with default tag", i, b)
		}
	}
	// Tag 0 default skips the init loop but must still be correct.
	m0 := New(4, 0)
	if m0.Data()[0].T != 0 {
		t.Error("zero-tag memory")
	}
}

func TestMemoryTransport(t *testing.T) {
	l := core.IFP1()
	hc := l.MustTag(core.ClassHC)
	m := New(32, 0)
	var delay kernel.Time

	p := &tlm.Payload{Cmd: tlm.Write, Addr: 4, Data: core.TagAll([]byte{9, 8, 7}, hc)}
	m.Transport(p, &delay)
	if p.Resp != tlm.OK {
		t.Fatalf("write resp = %v", p.Resp)
	}
	got := make([]core.TByte, 3)
	p = &tlm.Payload{Cmd: tlm.Read, Addr: 4, Data: got}
	m.Transport(p, &delay)
	if p.Resp != tlm.OK {
		t.Fatalf("read resp = %v", p.Resp)
	}
	for i, want := range []byte{9, 8, 7} {
		if got[i].V != want || got[i].T != hc {
			t.Errorf("byte %d = %+v (tags must survive memory round trips)", i, got[i])
		}
	}

	p = &tlm.Payload{Cmd: tlm.Read, Addr: 30, Data: make([]core.TByte, 4)}
	m.Transport(p, &delay)
	if p.Resp != tlm.AddressError {
		t.Errorf("out-of-bounds resp = %v", p.Resp)
	}
	p = &tlm.Payload{Cmd: tlm.Command(9), Addr: 0, Data: make([]core.TByte, 1)}
	m.Transport(p, &delay)
	if p.Resp != tlm.CommandError {
		t.Errorf("bad command resp = %v", p.Resp)
	}
}

func TestMemoryClassify(t *testing.T) {
	l := core.IFP1()
	hc := l.MustTag(core.ClassHC)
	m := New(16, 0)
	m.Data()[5].V = 0x42
	if err := m.Classify(4, 8, hc); err != nil {
		t.Fatal(err)
	}
	if m.Data()[3].T != 0 || m.Data()[4].T != hc || m.Data()[7].T != hc || m.Data()[8].T != 0 {
		t.Error("classify bounds wrong")
	}
	if m.Data()[5].V != 0x42 {
		t.Error("classify must not touch values")
	}
	if err := m.Classify(8, 4, hc); err == nil {
		t.Error("inverted range must be rejected")
	}
	if err := m.Classify(0, 17, hc); err == nil {
		t.Error("out-of-bounds range must be rejected")
	}
}

func TestMemoryLoad(t *testing.T) {
	l := core.IFP2()
	hi := l.MustTag(core.ClassHI)
	m := New(8, 0)
	if err := m.Load(2, []byte{1, 2, 3}, hi); err != nil {
		t.Fatal(err)
	}
	d := m.Data()
	if d[2] != core.B(1, hi) || d[4] != core.B(3, hi) {
		t.Errorf("loaded bytes = %+v", d[2:5])
	}
	if err := m.Load(6, []byte{1, 2, 3}, hi); err == nil {
		t.Error("overflowing load must be rejected")
	}
}

func TestPlainMemory(t *testing.T) {
	m := NewPlain(16)
	if m.Size() != 16 {
		t.Errorf("Size = %d", m.Size())
	}
	if err := m.Load(1, []byte{0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	if m.Data()[1] != 0xaa || m.Data()[2] != 0xbb {
		t.Error("load failed")
	}
	if err := m.Load(15, []byte{1, 2}); err == nil {
		t.Error("overflowing load must be rejected")
	}

	var delay kernel.Time
	l := core.IFP1()
	hc := l.MustTag(core.ClassHC)
	p := &tlm.Payload{Cmd: tlm.Write, Addr: 0, Data: core.TagAll([]byte{7}, hc)}
	m.Transport(p, &delay)
	if p.Resp != tlm.OK || m.Data()[0] != 7 {
		t.Fatalf("write: resp=%v", p.Resp)
	}
	rd := make([]core.TByte, 1)
	p = &tlm.Payload{Cmd: tlm.Read, Addr: 0, Data: rd}
	m.Transport(p, &delay)
	if p.Resp != tlm.OK || rd[0].V != 7 {
		t.Fatalf("read: %+v resp=%v", rd[0], p.Resp)
	}
	if rd[0].T != 0 {
		t.Error("plain memory must not produce tags")
	}
	p = &tlm.Payload{Cmd: tlm.Read, Addr: 16, Data: rd}
	m.Transport(p, &delay)
	if p.Resp != tlm.AddressError {
		t.Errorf("oob resp = %v", p.Resp)
	}
	p = &tlm.Payload{Cmd: tlm.Command(5), Addr: 0, Data: rd}
	m.Transport(p, &delay)
	if p.Resp != tlm.CommandError {
		t.Errorf("bad cmd resp = %v", p.Resp)
	}
}
