package mem

import (
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// The write hooks back the decode-cache invalidation in internal/rv32:
// every mutation path through the type must fire with the exact local
// offset range, and raw Data() writes must not.
func TestMemoryWriteHooks(t *testing.T) {
	l := core.IFP2()
	li := l.MustTag(core.ClassLI)
	m := New(64, li)
	type span struct{ start, end uint32 }
	var got []span
	m.AddWriteHook(func(start, end uint32) { got = append(got, span{start, end}) })

	p := &tlm.Payload{Cmd: tlm.Write, Addr: 8, Data: make([]core.TByte, 4)}
	var d kernel.Time
	m.Transport(p, &d)
	if err := m.Load(16, []byte{1, 2, 3}, li); err != nil {
		t.Fatal(err)
	}
	if err := m.Classify(20, 24, li); err != nil {
		t.Fatal(err)
	}
	m.Data()[0].V = 0xFF // raw access: no hook
	p = &tlm.Payload{Cmd: tlm.Read, Addr: 8, Data: make([]core.TByte, 4)}
	m.Transport(p, &d) // read: no hook

	want := []span{{8, 12}, {16, 19}, {20, 24}}
	if len(got) != len(want) {
		t.Fatalf("hook fired %d times (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("hook call %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPlainMemoryWriteHooks(t *testing.T) {
	m := NewPlain(64)
	type span struct{ start, end uint32 }
	var got []span
	m.AddWriteHook(func(start, end uint32) { got = append(got, span{start, end}) })

	p := &tlm.Payload{Cmd: tlm.Write, Addr: 4, Data: make([]core.TByte, 8)}
	var d kernel.Time
	m.Transport(p, &d)
	if err := m.Load(32, []byte{9}); err != nil {
		t.Fatal(err)
	}
	m.Data()[0] = 0xFF // raw access: no hook

	want := []span{{4, 12}, {32, 33}}
	if len(got) != len(want) {
		t.Fatalf("hook fired %d times (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("hook call %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// The platform constructs a fresh tainted RAM per run (every Table II
// measurement, every test): New's chunked default-tag fill is on that path
// and used to dominate VP+ platform construction as a per-byte loop.
func BenchmarkMemoryNew(b *testing.B) {
	l := core.IFP2()
	li := l.MustTag(core.ClassLI)
	b.SetBytes(16 << 20)
	for i := 0; i < b.N; i++ {
		m := New(16<<20, li)
		_ = m
	}
}

func BenchmarkMemoryClassify(b *testing.B) {
	l := core.IFP2()
	hi := l.MustTag(core.ClassHI)
	m := New(16<<20, l.MustTag(core.ClassLI))
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Classify(0, 16<<20, hi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryLoad(b *testing.B) {
	l := core.IFP2()
	li := l.MustTag(core.ClassLI)
	m := New(16<<20, li)
	img := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Load(0, img, li); err != nil {
			b.Fatal(err)
		}
	}
}
