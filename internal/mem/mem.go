// Package mem provides the virtual prototype's memories.
//
// Memory is the tainted RAM used by the DIFT-enabled platform (VP+): every
// byte carries a security tag (core.TByte), exactly like the paper's memory
// model. PlainMemory is the tag-free RAM used by the baseline platform (VP):
// the Table II overhead comparison requires a baseline that does not pay for
// tag storage or propagation.
//
// Both memories are TLM targets, and both additionally expose a direct
// access interface (the analog of TLM DMI) used by the CPU's hot load/store
// and fetch paths; only MMIO traffic goes through bus transactions, matching
// the original riscv-vp design.
package mem

import (
	"fmt"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// Memory is byte-addressable tainted RAM.
type Memory struct {
	data  []core.TByte
	hooks []func(start, end uint32)
}

// New allocates a tainted memory of the given size with all bytes zero and
// tagged with defaultTag.
func New(size uint32, defaultTag core.Tag) *Memory {
	m := &Memory{data: make([]core.TByte, size)}
	if defaultTag != 0 && size > 0 {
		// Chunked fill: seed one element, then double the initialized
		// prefix with copy (memmove) instead of a per-byte store loop.
		m.data[0].T = defaultTag
		for filled := 1; filled < len(m.data); filled *= 2 {
			copy(m.data[filled:], m.data[:filled])
		}
	}
	return m
}

// AddWriteHook registers f to be called after any mutation of the backing
// store that goes through this type — TLM write transactions, Load, and
// Classify — with the affected local offset range [start, end). The CPUs use
// it to invalidate predecoded-instruction cache entries when instruction
// bytes (or their tags) change underneath them, e.g. via DMA.
//
// Mutations through the raw Data() slice do NOT trigger hooks; the CPU
// invalidates its own direct-path stores inline.
func (m *Memory) AddWriteHook(f func(start, end uint32)) {
	m.hooks = append(m.hooks, f)
}

func (m *Memory) notifyWrite(start, end uint32) {
	for _, f := range m.hooks {
		f(start, end)
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// Data exposes the backing store for the CPU's direct (DMI-like) access
// path. Index i corresponds to local offset i.
func (m *Memory) Data() []core.TByte { return m.data }

// Transport implements tlm.Target: reads copy tainted bytes out, writes copy
// tainted bytes in, tags included — this is how taint flows through DMA and
// any other bus initiator.
func (m *Memory) Transport(p *tlm.Payload, delay *kernel.Time) {
	if uint64(p.Addr)+uint64(len(p.Data)) > uint64(len(m.data)) {
		p.Resp = tlm.AddressError
		return
	}
	switch p.Cmd {
	case tlm.Read:
		copy(p.Data, m.data[p.Addr:])
	case tlm.Write:
		copy(m.data[p.Addr:], p.Data)
		m.notifyWrite(p.Addr, p.Addr+uint32(len(p.Data)))
	default:
		p.Resp = tlm.CommandError
		return
	}
	p.Resp = tlm.OK
}

// Classify assigns tag t to all bytes in [start, end) without touching
// values; used to apply load-time classification rules (e.g. marking the
// program image HI or a key region HC).
func (m *Memory) Classify(start, end uint32, t core.Tag) error {
	if end < start || uint64(end) > uint64(len(m.data)) {
		return fmt.Errorf("mem: classify range [0x%x, 0x%x) outside memory of size 0x%x", start, end, len(m.data))
	}
	// Values must be preserved, so only the tag field is rewritten; slicing
	// first lets the compiler elide the per-element bounds checks.
	sub := m.data[start:end]
	for i := range sub {
		sub[i].T = t
	}
	m.notifyWrite(start, end)
	return nil
}

// Load copies a program segment into memory at offset, tagging every written
// byte with t.
func (m *Memory) Load(offset uint32, bytes []byte, t core.Tag) error {
	if uint64(offset)+uint64(len(bytes)) > uint64(len(m.data)) {
		return fmt.Errorf("mem: load of %d bytes at 0x%x exceeds memory of size 0x%x", len(bytes), offset, len(m.data))
	}
	dst := m.data[offset : offset+uint32(len(bytes))]
	for i, b := range bytes {
		dst[i] = core.TByte{V: b, T: t}
	}
	m.notifyWrite(offset, offset+uint32(len(bytes)))
	return nil
}

// PlainMemory is byte-addressable RAM without tags, for the baseline VP.
type PlainMemory struct {
	data  []byte
	hooks []func(start, end uint32)
}

// AddWriteHook registers f exactly like Memory.AddWriteHook: it fires on TLM
// write transactions and Load, with the affected local offset range.
func (m *PlainMemory) AddWriteHook(f func(start, end uint32)) {
	m.hooks = append(m.hooks, f)
}

func (m *PlainMemory) notifyWrite(start, end uint32) {
	for _, f := range m.hooks {
		f(start, end)
	}
}

// NewPlain allocates a plain memory of the given size.
func NewPlain(size uint32) *PlainMemory {
	return &PlainMemory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *PlainMemory) Size() uint32 { return uint32(len(m.data)) }

// Data exposes the backing store for the CPU's direct access path.
func (m *PlainMemory) Data() []byte { return m.data }

// Transport implements tlm.Target. Tags on writes are dropped and reads
// return the bus's zero tag: the baseline platform does not track taint.
func (m *PlainMemory) Transport(p *tlm.Payload, delay *kernel.Time) {
	if uint64(p.Addr)+uint64(len(p.Data)) > uint64(len(m.data)) {
		p.Resp = tlm.AddressError
		return
	}
	switch p.Cmd {
	case tlm.Read:
		for i := range p.Data {
			p.Data[i] = core.TByte{V: m.data[p.Addr+uint32(i)]}
		}
	case tlm.Write:
		for i := range p.Data {
			m.data[p.Addr+uint32(i)] = p.Data[i].V
		}
		m.notifyWrite(p.Addr, p.Addr+uint32(len(p.Data)))
	default:
		p.Resp = tlm.CommandError
		return
	}
	p.Resp = tlm.OK
}

// Load copies a program segment into memory at offset.
func (m *PlainMemory) Load(offset uint32, bytes []byte) error {
	if uint64(offset)+uint64(len(bytes)) > uint64(len(m.data)) {
		return fmt.Errorf("mem: load of %d bytes at 0x%x exceeds memory of size 0x%x", len(bytes), offset, len(m.data))
	}
	copy(m.data[offset:], bytes)
	m.notifyWrite(offset, offset+uint32(len(bytes)))
	return nil
}
