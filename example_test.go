package vpdift_test

import (
	"errors"
	"fmt"
	"log"

	"vpdift"
)

// Example demonstrates the core loop of the library: build a guest binary,
// attach a security policy, run, and observe the DIFT engine stop a leak.
func Example() {
	img, err := vpdift.BuildProgram(`
main:
	la t0, key
	lw a0, 0(t0)          # load the secret
	li t0, UART_BASE
	sw a0, UART_TX(t0)    # ... and write it to the console
	li a0, 0
	ret
	.data
	.align 2
key:
	.word 0xDEADBEEF
`)
	if err != nil {
		log.Fatal(err)
	}

	lat := vpdift.IFP1()
	lc, hc := lat.MustTag(vpdift.ClassLC), lat.MustTag(vpdift.ClassHC)
	key := img.MustSymbol("key")
	pol := vpdift.NewPolicy(lat, lc).
		WithOutput("uart0.tx", lc).
		WithRegion(vpdift.RegionRule{Name: "key", Start: key, End: key + 4, Classify: true, Class: hc})

	pl, err := vpdift.NewPlatform(vpdift.WithPolicy(pol))
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		log.Fatal(err)
	}

	_, runErr := pl.Run(vpdift.Forever)
	var v *vpdift.Violation
	if errors.As(runErr, &v) {
		fmt.Printf("%s: flow %s -> %s at port %s\n", v.Kind, v.HaveClass(), v.RequiredClass(), v.Port)
	}
	// Output: output-clearance: flow HC -> LC at port uart0.tx
}

// ExampleLattice_LUB shows the paper's Example 1: combining data of classes
// (LC,LI) and (HC,HI) in the combined IFP-3 lattice yields (HC,LI) —
// confidential and untrusted.
func ExampleLattice_LUB() {
	l := vpdift.IFP3()
	a := l.MustTag("(LC,LI)")
	b := l.MustTag("(HC,HI)")
	fmt.Println(l.Name(l.LUB(a, b)))
	// Output: (HC,LI)
}

// ExampleLattice_AllowedFlow shows clearance checking on IFP-2: untrusted
// data must not reach a high-integrity sink.
func ExampleLattice_AllowedFlow() {
	l := vpdift.IFP2()
	hi, li := l.MustTag(vpdift.ClassHI), l.MustTag(vpdift.ClassLI)
	fmt.Println(l.AllowedFlow(hi, li), l.AllowedFlow(li, hi))
	// Output: true false
}

// ExampleNewPlatform_baseline runs a guest on the untracked baseline VP.
func ExampleNewPlatform_baseline() {
	img, err := vpdift.BuildProgram(`
main:
	la a0, msg
	addi sp, sp, -16
	sw ra, 12(sp)
	call uart_puts
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.data
msg:	.asciz "hello, world"
`)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := vpdift.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		log.Fatal(err)
	}
	if _, err := pl.Run(vpdift.Forever); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(pl.UART.Output()))
	// Output: hello, world
}
