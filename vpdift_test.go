package vpdift_test

import (
	"errors"
	"strings"
	"testing"

	"vpdift"
)

func TestPublicQuickstartFlow(t *testing.T) {
	img, err := vpdift.BuildProgram(`
main:
	la t0, secret
	lw a0, 0(t0)
	li t0, UART_BASE
	sw a0, UART_TX(t0)
	li a0, 0
	ret
	.data
	.align 2
secret:
	.word 0x11223344
`)
	if err != nil {
		t.Fatal(err)
	}
	lat := vpdift.IFP1()
	lc, hc := lat.MustTag(vpdift.ClassLC), lat.MustTag(vpdift.ClassHC)
	secret := img.MustSymbol("secret")
	pol := vpdift.NewPolicy(lat, lc).
		WithOutput("uart0.tx", lc).
		WithRegion(vpdift.RegionRule{
			Name: "secret", Start: secret, End: secret + 4,
			Classify: true, Class: hc,
		})
	pl, err := vpdift.NewPlatform(
		vpdift.WithPolicy(pol),
		vpdift.WithObserver(vpdift.NewObserver()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	res, runErr := pl.Run(vpdift.Forever)
	var v *vpdift.Violation
	if !errors.As(runErr, &v) {
		t.Fatalf("want violation, got %v", runErr)
	}
	if v.Kind != vpdift.KindOutputClearance {
		t.Errorf("kind = %v", v.Kind)
	}
	if res.Violation != v {
		t.Error("Result.Violation must be the wrapped violation")
	}
	if len(v.Provenance) == 0 {
		t.Error("observer attached: violation must carry a provenance chain")
	}
	if res.Metrics["checks.output"] == 0 {
		t.Error("metrics must count the failed output check")
	}
}

func TestPublicBaselinePlatform(t *testing.T) {
	img, err := vpdift.BuildProgram(`
main:
	la a0, msg
	addi sp, sp, -16
	sw ra, 12(sp)
	call uart_puts
	li a0, 5
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.data
msg:	.asciz "public api"
`)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately uses the deprecated Config shim: it must keep compiling
	// and behaving until the transition finishes.
	pl, err := vpdift.NewPlatform(vpdift.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(vpdift.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(pl.UART.Output()); got != "public api" {
		t.Errorf("uart = %q", got)
	}
	if !res.Exited || res.ExitCode != 5 {
		t.Errorf("result = %+v", res)
	}
	if res.Instret == 0 || res.Metrics["sim.instret"] != res.Instret {
		t.Errorf("instret gauge = %d vs %d", res.Metrics["sim.instret"], res.Instret)
	}
	if pl.IsDIFT() {
		t.Error("baseline must not be DIFT")
	}
}

func TestPublicLatticeConstruction(t *testing.T) {
	l, err := vpdift.NewLattice(
		[]string{"PUBLIC", "INTERNAL", "SECRET"},
		[][2]string{{"PUBLIC", "INTERNAL"}, {"INTERNAL", "SECRET"}})
	if err != nil {
		t.Fatal(err)
	}
	pub := l.MustTag("PUBLIC")
	sec := l.MustTag("SECRET")
	if !l.AllowedFlow(pub, sec) || l.AllowedFlow(sec, pub) {
		t.Error("three-level lattice flows wrong")
	}
	if top, ok := l.Top(); !ok || top != sec {
		t.Error("top must be SECRET")
	}

	prod, err := vpdift.Product(vpdift.IFP1(), vpdift.IFP2())
	if err != nil || prod.Size() != 4 {
		t.Errorf("product: %v size=%d", err, prod.Size())
	}
	pb, err := vpdift.PerByteKeyIntegrity(4)
	if err != nil || pb.Size() != 6 {
		t.Errorf("per-byte: %v", err)
	}
}

func TestPublicAssembler(t *testing.T) {
	img, err := vpdift.Assemble("start:\n\tnop\n\tj start\n", vpdift.AsmOptions{Base: 0x80000000})
	if err != nil {
		t.Fatal(err)
	}
	if img.TextWords() != 2 || img.Base != 0x80000000 {
		t.Errorf("img = %v", img)
	}
	if _, err := vpdift.Assemble("bogus!\n", vpdift.AsmOptions{}); err == nil {
		t.Error("bad source must fail")
	}
}

func TestPublicMemoryMapConstants(t *testing.T) {
	// The facade constants must match the guest runtime equates.
	img, err := vpdift.BuildProgram(`
main:
	li a0, 0
	ret
`)
	if err != nil {
		t.Fatal(err)
	}
	for sym, want := range map[string]uint32{
		"RAM_BASE":     vpdift.RAMBase,
		"UART_BASE":    vpdift.UARTBase,
		"SENSOR_BASE":  vpdift.SensorBase,
		"CAN_BASE":     vpdift.CANBase,
		"AES_BASE":     vpdift.AESBase,
		"DMA_BASE":     vpdift.DMABase,
		"CLINT_BASE":   vpdift.CLINTBase,
		"INTC_BASE":    vpdift.IntCBase,
		"SYSCTRL_BASE": vpdift.SysCtrlBase,
	} {
		if got := img.MustSymbol(sym); got != want {
			t.Errorf("%s = 0x%x, facade says 0x%x", sym, got, want)
		}
	}
}

func TestPublicViolationRendering(t *testing.T) {
	l := vpdift.IFP2()
	pol := vpdift.NewPolicy(l, l.MustTag(vpdift.ClassLI)).
		WithFetchClearance(l.MustTag(vpdift.ClassHI))
	if err := pol.Validate(); err != nil {
		t.Fatal(err)
	}
	// Error text must name classes, not raw tags.
	img, err := vpdift.BuildProgram(`
main:
	la t0, blob
	jr t0
	.data
	.align 2
blob:
	.word 0x00000013
`)
	if err != nil {
		t.Fatal(err)
	}
	pol.WithRegion(vpdift.RegionRule{
		Name: "text", Start: img.Base, End: img.Base + uint32(len(img.Text)),
		Classify: true, Class: l.MustTag(vpdift.ClassHI),
	})
	pl, err := vpdift.NewPlatform(vpdift.Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	_, runErr := pl.Run(vpdift.S)
	if runErr == nil || !strings.Contains(runErr.Error(), "LI -> HI") {
		t.Errorf("violation text = %v", runErr)
	}
}

func TestPublicTraceFacade(t *testing.T) {
	img, err := vpdift.BuildProgram(`
main:
	la a0, msg
	tail uart_puts
	.data
msg:	.asciz "traced\n"
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := &vpdift.Trace{
		Kernel: vpdift.NewKernelTrace(0),
		VCD:    vpdift.NewVCD(),
		Prof:   vpdift.NewProfiler(),
	}
	pl, err := vpdift.NewPlatform(
		vpdift.WithObserver(vpdift.NewObserver()),
		vpdift.WithTrace(tr),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(vpdift.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kernel.EventCount() == 0 {
		t.Error("kernel trace recorded nothing")
	}
	if tr.Prof.Total() == 0 {
		t.Error("profiler recorded nothing")
	}
	if hot, _ := tr.Prof.Hottest(); hot == "" {
		t.Error("no hottest function")
	}
	if res.Metrics["trace.kernel_events"] == 0 || res.Metrics["trace.prof_retired"] == 0 {
		t.Errorf("trace gauges missing from metrics: %v", res.Metrics)
	}
	var chrome strings.Builder
	if err := vpdift.WriteChromeTrace(&chrome, tr.Kernel, pl.Observer()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"kernel"`, `"name":"bus"`, `"name":"taint"`} {
		if !strings.Contains(chrome.String(), want) {
			t.Errorf("merged chrome trace missing process %s", want)
		}
	}
	tr.VCD.Sample(uint64(pl.Sim.Now()))
	var vcd strings.Builder
	if err := tr.VCD.Dump(&vcd); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vcd.String(), "$enddefinitions $end") {
		t.Error("VCD header incomplete")
	}
}

func TestPublicCoverage(t *testing.T) {
	img, err := vpdift.BuildProgram(`
main:
	la t0, key
	li s0, 0
	li s1, 4
	li t1, 0
1:	lw t2, 0(t0)
	add t1, t1, t2
	addi t0, t0, 4
	addi s0, s0, 1
	blt s0, s1, 1b
	la t0, sum
	sw t1, 0(t0)
	li a0, 0
	ret
	.data
	.align 2
key:
	.word 1, 2, 3, 4
sum:
	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	lat := vpdift.IFP1()
	lc, hc := lat.MustTag(vpdift.ClassLC), lat.MustTag(vpdift.ClassHC)
	key := img.MustSymbol("key")
	pol := vpdift.NewPolicy(lat, lc).
		WithOutput("uart0.tx", lc).
		WithRegion(vpdift.RegionRule{
			Name: "key", Start: key, End: key + 16,
			Classify: true, Class: hc,
		})
	cov := vpdift.NewCoverage()
	pl, err := vpdift.NewPlatform(vpdift.WithPolicy(pol), vpdift.WithCoverage(cov))
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(vpdift.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.ExitCode != 0 {
		t.Fatalf("guest exited=%v code=%d", res.Exited, res.ExitCode)
	}
	s := cov.Guest.Stats()
	if s.InsnsCovered == 0 || s.BlocksCovered == 0 || s.EdgesCovered == 0 {
		t.Fatalf("guest coverage recorded nothing: %+v", s)
	}
	if cov.Taint.EverTainted() == 0 {
		t.Error("taint heatmap empty despite the classified key region")
	}
	if !cov.Audit.Configured() {
		t.Error("policy audit not configured despite WithPolicy")
	}
	if res.Metrics["cover.guest_insns_covered"] == 0 ||
		res.Metrics["cover.taint_ever_bytes"] == 0 {
		t.Errorf("cover gauges missing from metrics: %v", res.Metrics)
	}
	var rep strings.Builder
	if err := cov.Guest.WriteReport(&rep, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "main:") {
		t.Errorf("coverage report lacks the entry symbol:\n%s", rep.String())
	}
}
