// Command vp-asm assembles RV32IM assembly into a flat binary image and
// inspects the result.
//
// Usage:
//
//	vp-asm [-base addr] [-runtime] [-o out.bin] [-syms] [-dis] file.s
//
// With -runtime the source is linked against the guest runtime (crt0, UART
// console routines, the platform equates) and must define main; otherwise
// it is assembled stand-alone.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"vpdift/internal/asm"
	"vpdift/internal/guest"
	"vpdift/internal/rv32"
)

func main() {
	base := flag.Uint("base", 0x80000000, "text base address")
	withRuntime := flag.Bool("runtime", false, "link against the guest runtime (source defines main)")
	out := flag.String("o", "", "write the flattened image to this file")
	syms := flag.Bool("syms", false, "dump the symbol table")
	dis := flag.Bool("dis", false, "disassemble the text section")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vp-asm [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var img *asm.Image
	if *withRuntime {
		img, err = guest.Program(string(src))
	} else {
		img, err = asm.Assemble(string(src), asm.Options{Base: uint32(*base)})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println(img)
	if *syms {
		fmt.Println("\nsymbols:")
		for _, s := range img.SortedSymbols() {
			fmt.Println("  " + s)
		}
	}
	if *dis {
		fmt.Println("\ndisassembly:")
		for i := 0; i+4 <= len(img.Text); i += 4 {
			pc := img.Base + uint32(i)
			w := binary.LittleEndian.Uint32(img.Text[i:])
			if name, off, ok := img.SymbolAt(pc); ok && off == 0 {
				fmt.Printf("%s:\n", name)
			}
			fmt.Printf("  %08x:  %08x  %s\n", pc, w, rv32.Disassemble(w, pc))
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, img.Flatten(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d bytes to %s\n", img.Size(), *out)
	}
}
