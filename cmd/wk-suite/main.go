// Command wk-suite regenerates Table I of the paper: the Wilander–Kamkar
// buffer-overflow suite run against the Section VI-B code-injection policy
// (IFP-2, program text High-Integrity, HI instruction-fetch clearance,
// external input Low-Integrity).
//
// With -verify, every applicable attack is additionally run WITHOUT the
// DIFT engine to confirm the overflow genuinely hijacks control flow.
package main

import (
	"flag"
	"fmt"
	"os"

	"vpdift/internal/obs"
	"vpdift/internal/wk"
)

func main() {
	verify := flag.Bool("verify", false, "also run each attack without DIFT to confirm it works")
	why := flag.Bool("why", false, "print each detected attack's taint-provenance chain")
	flag.Parse()

	if *why {
		for _, a := range wk.Suite() {
			a := a
			if !a.Applicable() {
				continue
			}
			res, v, err := wk.RunObserved(&a, true, obs.New())
			if err != nil {
				fmt.Fprintf(os.Stderr, "attack %d: %v\n", a.Num, err)
				os.Exit(1)
			}
			if res != wk.Detected || v == nil {
				continue
			}
			fmt.Fprintf(os.Stderr, "attack %2d (%s / %s / %s): %v\n",
				a.Num, a.Location, a.Target, a.Technique, v)
			fmt.Fprintf(os.Stderr, "provenance (classification -> failed check):\n%s\n",
				v.ProvenanceReport(nil))
		}
	}

	if *verify {
		for _, a := range wk.Suite() {
			a := a
			if !a.Applicable() {
				continue
			}
			res, err := wk.Run(&a, false)
			if err != nil {
				fmt.Fprintf(os.Stderr, "attack %d sanity run failed: %v\n", a.Num, err)
				os.Exit(1)
			}
			if res != wk.Missed {
				fmt.Fprintf(os.Stderr, "attack %d did not hijack control without DIFT\n", a.Num)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "attack %2d: control-flow hijack confirmed without DIFT\n", a.Num)
		}
	}

	table, err := wk.Table()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("Table I: buffer-overflow test-suite results (code-injection policy)")
	fmt.Print(table)
}
