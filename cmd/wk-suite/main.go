// Command wk-suite regenerates Table I of the paper: the Wilander–Kamkar
// buffer-overflow suite run against the Section VI-B code-injection policy
// (IFP-2, program text High-Integrity, HI instruction-fetch clearance,
// external input Low-Integrity).
//
// With -verify, every applicable attack is additionally run WITHOUT the
// DIFT engine to confirm the overflow genuinely hijacks control flow.
//
// With -matrix, the suite instead emits the detection matrix: every attack
// crossed with every clearance point the engine implements, marking which
// check fired. -matrix-json additionally writes the matrix as JSON for
// machine checking (CI compares it against the Table I golden); the JSON rows
// then also carry each attack's dynamic edge count.
//
// With -cover-out, every applicable attack runs with the coverage layer
// attached and exports its snapshot as wk-<n>.cover.json, plus the merged
// suite snapshot as suite.cover.json — the baseline input for vp-diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vpdift/internal/cover"
	"vpdift/internal/flight"
	"vpdift/internal/obs"
	"vpdift/internal/wk"
)

func main() {
	verify := flag.Bool("verify", false, "also run each attack without DIFT to confirm it works")
	why := flag.Bool("why", false, "print each detected attack's taint-provenance chain")
	matrix := flag.Bool("matrix", false, "emit the attack x clearance-point detection matrix instead of Table I")
	matrixJSON := flag.String("matrix-json", "", "also write the detection matrix as JSON to this file (implies -matrix)")
	forensicsDir := flag.String("forensics", "", "write each detected attack's flight-recorder bundle (JSON + report) into this directory, validating every bundle")
	coverDir := flag.String("cover-out", "", "run with coverage attached and write per-attack snapshots plus the merged suite.cover.json into this directory (implies -matrix)")
	flag.Parse()

	if *forensicsDir != "" {
		if err := exportForensics(*forensicsDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *matrix || *matrixJSON != "" || *coverDir != "" {
		var m *wk.Matrix
		var err error
		// The JSON and snapshot consumers want the coverage-instrumented
		// matrix (per-row edge counts); the text rendering never shows edges,
		// so the Table I golden is untouched either way.
		if *matrixJSON != "" || *coverDir != "" {
			var snaps []*cover.Snapshot
			m, snaps, err = wk.RunMatrixCover()
			if err == nil && *coverDir != "" {
				err = exportCover(*coverDir, m, snaps)
			}
		} else {
			m, err = wk.RunMatrix()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("Table I detection matrix: attack x clearance point (X = check fired)")
		m.WriteText(os.Stdout)
		if *matrixJSON != "" {
			f, err := os.Create(*matrixJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := m.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if m.Detected != 10 || m.NA != 8 || m.Missed != 0 {
			fmt.Fprintf(os.Stderr, "matrix deviates from Table I: Detected=%d N-A=%d Missed=%d (want 10/8/0)\n",
				m.Detected, m.NA, m.Missed)
			os.Exit(1)
		}
		return
	}

	if *why {
		for _, a := range wk.Suite() {
			a := a
			if !a.Applicable() {
				continue
			}
			res, v, err := wk.RunObserved(&a, true, obs.New())
			if err != nil {
				fmt.Fprintf(os.Stderr, "attack %d: %v\n", a.Num, err)
				os.Exit(1)
			}
			if res != wk.Detected || v == nil {
				continue
			}
			fmt.Fprintf(os.Stderr, "attack %2d (%s / %s / %s): %v\n",
				a.Num, a.Location, a.Target, a.Technique, v)
			fmt.Fprintf(os.Stderr, "provenance (classification -> failed check):\n%s\n",
				v.ProvenanceReport(nil))
		}
	}

	if *verify {
		for _, a := range wk.Suite() {
			a := a
			if !a.Applicable() {
				continue
			}
			res, err := wk.Run(&a, false)
			if err != nil {
				fmt.Fprintf(os.Stderr, "attack %d sanity run failed: %v\n", a.Num, err)
				os.Exit(1)
			}
			if res != wk.Missed {
				fmt.Fprintf(os.Stderr, "attack %d did not hijack control without DIFT\n", a.Num)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "attack %2d: control-flow hijack confirmed without DIFT\n", a.Num)
		}
	}

	table, err := wk.Table()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("Table I: buffer-overflow test-suite results (code-injection policy)")
	fmt.Print(table)
}

// exportCover writes each applicable attack's coverage snapshot as
// wk-<n>.cover.json plus the fold of all of them as suite.cover.json. The
// merged file is what CI's coverage-diff guard pins: vp-diff compares a fresh
// suite.cover.json against the checked-in baseline and fails on lost edges,
// newly-dead rules, or verdict flips.
func exportCover(dir string, m *wk.Matrix, snaps []*cover.Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	wrote := 0
	for i, snap := range snaps {
		if snap == nil {
			continue
		}
		name := fmt.Sprintf("wk-%d.cover.json", m.Rows[i].Num)
		if err := os.WriteFile(filepath.Join(dir, name), snap.JSON(), 0o644); err != nil {
			return err
		}
		wrote++
	}
	merged, err := cover.MergeAll(snaps...)
	if err != nil {
		return fmt.Errorf("cover-out: merging suite snapshots: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "suite.cover.json"), merged.JSON(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cover: %d attack snapshots + merged suite.cover.json in %s (%d edges, %d blocks)\n",
		wrote, dir, merged.EdgeCount(), merged.BlockCount())
	return nil
}

// exportForensics reruns every applicable attack under the policy and writes
// each detected attack's forensic bundle as wk-<n>.forensics.json plus the
// human report. Every bundle is round-tripped through the schema validator,
// and each trace window is checked to end at the violating instruction — so
// a CI job needs nothing beyond this command's exit status.
func exportForensics(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	wrote := 0
	for _, a := range wk.Suite() {
		a := a
		if !a.Applicable() {
			continue
		}
		res, v, bundle, err := wk.RunForensic(&a, true, wk.RunMode{})
		if err != nil {
			return fmt.Errorf("attack %d: %w", a.Num, err)
		}
		if res != wk.Detected || v == nil {
			continue
		}
		if bundle == nil {
			return fmt.Errorf("attack %d: detected but produced no forensic bundle", a.Num)
		}
		raw := bundle.JSON()
		parsed, err := flight.ValidateBundle(raw)
		if err != nil {
			return fmt.Errorf("attack %d: bundle failed validation: %w", a.Num, err)
		}
		if len(parsed.Trace) == 0 {
			return fmt.Errorf("attack %d: bundle has an empty trace window", a.Num)
		}
		last := parsed.Trace[len(parsed.Trace)-1]
		if last.Kind != "violation" || last.PC != flight.Hex32(v.PC) {
			return fmt.Errorf("attack %d: trace window ends at %s/%s, want violation at %s",
				a.Num, last.Kind, last.PC, flight.Hex32(v.PC))
		}
		name := fmt.Sprintf("wk-%d", a.Num)
		if err := os.WriteFile(filepath.Join(dir, name+".forensics.json"), raw, 0o644); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name+".forensics.txt"))
		if err != nil {
			return err
		}
		if err := bundle.WriteReport(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			return err
		}
		wrote++
	}
	fmt.Fprintf(os.Stderr, "forensics: %d validated bundles in %s\n", wrote, dir)
	return nil
}
