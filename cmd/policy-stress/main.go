// Command policy-stress implements the paper's future-work idea: automatic
// test-case generation for stress-testing security policies. It generates
// random embedded programs with known data flows — register chains, memory
// round trips at every granularity, CSR hops, sensor-MMIO hops, DMA copies
// — and checks the DIFT engine for under-tainting (a secret-derived output
// that goes undetected) and over-tainting (a public output that gets
// flagged).
//
// Usage:
//
//	policy-stress [-seeds N] [-steps N] [-no-dma] [-no-mmio] [-no-csr]
package main

import (
	"flag"
	"fmt"
	"os"

	"vpdift/internal/stress"
)

func main() {
	seeds := flag.Int("seeds", 100, "generated programs per direction")
	steps := flag.Int("steps", 12, "data-flow transformation steps per chain")
	noDMA := flag.Bool("no-dma", false, "exclude DMA-copy hops")
	noMMIO := flag.Bool("no-mmio", false, "exclude sensor-MMIO hops")
	noCSR := flag.Bool("no-csr", false, "exclude CSR hops")
	flag.Parse()

	out := stress.Run(stress.Config{
		Seeds:   *seeds,
		Steps:   *steps,
		UseDMA:  !*noDMA,
		UseMMIO: !*noMMIO,
		UseCSR:  !*noCSR,
	})
	fmt.Printf("ran %d generated programs\n", out.Programs)
	if out.OK() {
		fmt.Println("no under-tainting, no over-tainting: the DIFT engine held")
		return
	}
	for _, f := range out.Failures {
		fmt.Printf("\nFAILURE seed=%d emitSecret=%v: %s\n%s\nprogram:\n%s\n",
			f.Seed, f.EmitSecret, f.Problem, f.Detail, f.Source)
	}
	os.Exit(1)
}
