// Command vp-run assembles a guest program and executes it on the virtual
// prototype, optionally with a DIFT security policy.
//
// Usage:
//
//	vp-run [flags] file.s
//
// The source is linked against the guest runtime and must define main. The
// canned policies are:
//
//	none        baseline VP, no tracking
//	conf        IFP-1 confidentiality; regions named with -secret become HC,
//	            the UART TX requires LC
//	integrity   IFP-2 code-injection policy: program image HI, HI fetch
//	            clearance, all input LI
//
// Console input is supplied with -stdin and classified as the policy's
// default (untrusted/public) class.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/rv32"
	"vpdift/internal/soc"
)

func main() {
	policyName := flag.String("policy", "none", "security policy: none, conf or integrity")
	secret := flag.String("secret", "", "comma-separated symbol[:len] regions classified secret (conf policy)")
	stdin := flag.String("stdin", "", "bytes injected into the UART before the run")
	horizonMS := flag.Uint64("horizon", 10000, "simulation horizon in milliseconds")
	mapFlag := flag.Bool("map", false, "print the platform memory map before running")
	trace := flag.Uint64("trace", 0, "disassemble the first N executed instructions to stderr")
	taintMap := flag.Bool("taintmap", false, "print the per-class RAM census and tainted ranges after the run")
	why := flag.Bool("why", false, "on violation, print the taint-provenance chain (classification site to failed check)")
	metricsOut := flag.String("metrics", "", "write the metrics snapshot as JSON to this file ('-' for stderr)")
	eventsOut := flag.String("events", "", "write the recorded taint events as JSONL to this file")
	chromeOut := flag.String("chrome", "", "write the recorded taint events as a Chrome trace to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vp-run [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	img, err := guest.Program(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var pol *core.Policy
	switch *policyName {
	case "none":
	case "conf":
		l := core.IFP1()
		lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
		pol = core.NewPolicy(l, lc).WithOutput("uart0.tx", lc)
		for _, spec := range splitNonEmpty(*secret) {
			name, length := spec, uint32(4)
			if i := strings.IndexByte(spec, ':'); i >= 0 {
				name = spec[:i]
				fmt.Sscanf(spec[i+1:], "%d", &length)
			}
			addr, ok := img.Symbol(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown symbol %q\n", name)
				os.Exit(2)
			}
			pol.WithRegion(core.RegionRule{
				Name: name, Start: addr, End: addr + length,
				Classify: true, Class: hc,
			})
		}
	case "integrity":
		l := core.IFP2()
		hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
		pol = core.NewPolicy(l, li).
			WithFetchClearance(hi).
			WithRegion(core.RegionRule{
				Name: "image", Start: img.Base, End: img.End(),
				Classify: true, Class: hi,
			}).
			WithInput("uart0.rx", li)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	var observer *obs.Observer
	if *why || *metricsOut != "" || *eventsOut != "" || *chromeOut != "" {
		observer = obs.New()
	}
	pl, err := soc.New(soc.Config{Policy: pol, Obs: observer})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer pl.Shutdown()
	if *mapFlag {
		fmt.Fprintln(os.Stderr, "memory map:")
		for _, r := range pl.Bus.Ranges() {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
	}
	if err := pl.Load(img); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *trace > 0 {
		remaining := *trace
		tracer := func(pc, insn uint32) {
			if remaining == 0 {
				return
			}
			remaining--
			loc := ""
			if name, off, ok := img.SymbolAt(pc); ok {
				loc = fmt.Sprintf(" <%s+0x%x>", name, off)
			}
			fmt.Fprintf(os.Stderr, "%08x:  %08x  %-32s%s\n", pc, insn, rv32.Disassemble(insn, pc), loc)
		}
		if pl.Core != nil {
			pl.Core.Tracer = tracer
		} else {
			pl.TaintCore.Tracer = tracer
		}
	}
	if *stdin != "" {
		pl.UART.Inject([]byte(*stdin))
	}

	runErr := pl.Run(kernel.Time(*horizonMS) * kernel.MS)
	os.Stdout.Write(pl.UART.Output())

	if *taintMap && pl.IsDIFT() {
		fmt.Fprintln(os.Stderr, "\ntaint census (RAM bytes per class):")
		for class, n := range pl.TaintSummary() {
			fmt.Fprintf(os.Stderr, "  %-12s %d\n", class, n)
		}
		ranges := pl.TaintedRanges()
		fmt.Fprintf(os.Stderr, "tainted ranges (%d):\n", len(ranges))
		const maxShown = 32
		for i, r := range ranges {
			if i == maxShown {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(ranges)-maxShown)
				break
			}
			fmt.Fprintln(os.Stderr, "  "+r)
		}
	}

	writeExports(pl, observer, *metricsOut, *eventsOut, *chromeOut)

	var v *core.Violation
	switch {
	case errors.As(runErr, &v):
		fmt.Fprintf(os.Stderr, "\nSECURITY VIOLATION: %v\n", v)
		if *why {
			annotate := func(ev core.TaintEvent) string {
				if ev.PC == 0 || ev.Insn == 0 {
					return ""
				}
				s := rv32.Disassemble(ev.Insn, ev.PC)
				if name, off, ok := img.SymbolAt(ev.PC); ok {
					s += fmt.Sprintf(" <%s+0x%x>", name, off)
				}
				return s
			}
			fmt.Fprintf(os.Stderr, "provenance (classification -> failed check):\n%s",
				v.ProvenanceReport(annotate))
		}
		os.Exit(3)
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "\nerror: %v\n", runErr)
		os.Exit(1)
	}
	exited, code := pl.Exited()
	fmt.Fprintf(os.Stderr, "\n[exited=%v code=%d instret=%d simtime=%v]\n",
		exited, code, pl.Instret(), pl.Sim.Now())
	if exited {
		os.Exit(int(code) & 0x7f)
	}
}

// writeExports dumps the observer's metrics and event stream in the formats
// requested on the command line.
func writeExports(pl *soc.Platform, o *obs.Observer, metricsOut, eventsOut, chromeOut string) {
	if o == nil {
		return
	}
	openOut := func(path string) (*os.File, bool) {
		if path == "-" {
			return os.Stderr, false
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return f, true
	}
	if metricsOut != "" {
		f, closeit := openOut(metricsOut)
		if err := obs.WriteMetricsJSON(f, pl.MetricsSnapshot()); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if closeit {
			f.Close()
		}
	}
	if eventsOut != "" {
		f, closeit := openOut(eventsOut)
		if err := o.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if closeit {
			f.Close()
		}
	}
	if chromeOut != "" {
		f, closeit := openOut(chromeOut)
		if err := o.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if closeit {
			f.Close()
		}
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
