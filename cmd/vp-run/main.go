// Command vp-run assembles a guest program and executes it on the virtual
// prototype, optionally with a DIFT security policy.
//
// Usage:
//
//	vp-run [flags] file.s
//
// The source is linked against the guest runtime and must define main. The
// canned policies are:
//
//	none        baseline VP, no tracking
//	conf        IFP-1 confidentiality; regions named with -secret become HC,
//	            the UART TX requires LC
//	integrity   IFP-2 code-injection policy: program image HI, HI fetch
//	            clearance, all input LI
//
// Console input is supplied with -stdin and classified as the policy's
// default (untrusted/public) class. -decoupled runs the policy's taint
// monitor on a parallel goroutine (DESIGN.md §5.11); verdicts and
// provenance are identical to the inline VP+.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/flight"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/rv32"
	"vpdift/internal/soc"
	"vpdift/internal/telemetry"
	"vpdift/internal/trace"
)

func main() {
	policyName := flag.String("policy", "none", "security policy: none, conf or integrity")
	secret := flag.String("secret", "", "comma-separated symbol[:len] regions classified secret (conf policy)")
	stdin := flag.String("stdin", "", "bytes injected into the UART before the run")
	horizonMS := flag.Uint64("horizon", 10000, "simulation horizon in milliseconds")
	mapFlag := flag.Bool("map", false, "print the platform memory map before running")
	disasN := flag.Uint64("trace", 0, "disassemble the first N executed instructions to stderr")
	taintMap := flag.Bool("taintmap", false, "print the per-class RAM census and tainted ranges after the run")
	why := flag.Bool("why", false, "on violation, print the taint-provenance chain (classification site to failed check)")
	metricsOut := flag.String("metrics", "", "write the metrics snapshot as JSON to this file ('-' for stderr)")
	eventsOut := flag.String("events", "", "write the recorded taint events as JSONL to this file")
	chromeOut := flag.String("chrome", "", "write taint, kernel and bus events as one merged Chrome trace to this file")
	vcdOut := flag.String("vcd", "", "write a GTKWave-compatible waveform of CPU/peripheral probes to this file")
	watch := flag.String("watch", "", "comma-separated symbol[:probe-name] RAM words added as waveform probes (with -vcd)")
	profileOut := flag.String("profile", "", "write the guest hot-path profile top table to this file ('-' for stderr)")
	foldedOut := flag.String("folded", "", "write folded call stacks (flamegraph input) to this file")
	ktOut := flag.String("kernel-trace", "", "write kernel scheduler and bus events as JSONL to this file")
	coverOut := flag.String("cover", "", "write the guest coverage report (blocks/edges, annotated disassembly) to this file ('-' for stderr)")
	snapOut := flag.String("cover-snapshot", "", "write the run's serializable coverage snapshot (vp-diff input) to this file")
	lcovOut := flag.String("lcov", "", "write guest line coverage in lcov .info format to this file")
	heatOut := flag.String("heatmap", "", "write the taint heatmap report (requires a policy) to this file ('-' for stderr)")
	auditOut := flag.String("policy-audit", "", "write the policy-audit report (requires a policy) to this file ('-' for stderr)")
	auditJSONOut := flag.String("policy-audit-json", "", "write the policy-audit counters as JSON to this file")
	decoupled := flag.Bool("decoupled", false, "run the taint monitor decoupled on a parallel goroutine (requires a policy)")
	sampleEvery := flag.Duration("sample-every", 0, "simulated-time metrics sampling period (e.g. 1ms; 0 disables telemetry)")
	timeseriesOut := flag.String("timeseries", "", "write the sampled metrics timeseries as JSONL to this file (.csv extension selects CSV)")
	forensicsDir := flag.String("forensics", "", "write the flight-recorder forensic bundle (JSON + report) into this directory on violation, fault, or horizon expiry")
	noFlight := flag.Bool("no-flight", false, "disable the always-on flight recorder")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vp-run [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	img, err := guest.Program(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var pol *core.Policy
	switch *policyName {
	case "none":
	case "conf":
		l := core.IFP1()
		lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
		pol = core.NewPolicy(l, lc).WithOutput("uart0.tx", lc)
		for _, spec := range splitNonEmpty(*secret) {
			name, length := spec, uint32(4)
			if i := strings.IndexByte(spec, ':'); i >= 0 {
				name = spec[:i]
				fmt.Sscanf(spec[i+1:], "%d", &length)
			}
			addr, ok := img.Symbol(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown symbol %q\n", name)
				os.Exit(2)
			}
			pol.WithRegion(core.RegionRule{
				Name: name, Start: addr, End: addr + length,
				Classify: true, Class: hc,
			})
		}
	case "integrity":
		l := core.IFP2()
		hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
		pol = core.NewPolicy(l, li).
			WithFetchClearance(hi).
			WithRegion(core.RegionRule{
				Name: "image", Start: img.Base, End: img.End(),
				Classify: true, Class: hi,
			}).
			WithInput("uart0.rx", li)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	var observer *obs.Observer
	if *why || *metricsOut != "" || *eventsOut != "" || *chromeOut != "" {
		observer = obs.New()
	}
	// Simulation-side tracing: -chrome implies kernel tracing so the merged
	// timeline carries scheduler and bus rows next to the taint events.
	var tr *trace.Trace
	needKernel := *ktOut != "" || *chromeOut != ""
	if needKernel || *vcdOut != "" || *profileOut != "" || *foldedOut != "" {
		tr = &trace.Trace{}
		if needKernel {
			tr.Kernel = trace.NewKernelTrace(0)
		}
		if *vcdOut != "" {
			tr.VCD = trace.NewVCD()
		}
		if *profileOut != "" || *foldedOut != "" {
			tr.Prof = trace.NewProfiler(soc.RAMBase, soc.DefaultRAMSize)
		}
	}
	// Coverage views are built on demand; the taint heatmap and policy audit
	// only make sense on the DIFT platform.
	var cov *cover.Cover
	if *coverOut != "" || *lcovOut != "" || *heatOut != "" || *auditOut != "" || *auditJSONOut != "" {
		cov = &cover.Cover{}
		if *coverOut != "" || *lcovOut != "" {
			cov.Guest = cover.NewGuest()
		}
		if pol == nil && (*heatOut != "" || *auditOut != "" || *auditJSONOut != "") {
			fmt.Fprintln(os.Stderr, "-heatmap/-policy-audit need a policy (see -policy)")
			os.Exit(2)
		}
		if *heatOut != "" {
			cov.Taint = cover.NewTaint()
		}
		if *auditOut != "" || *auditJSONOut != "" {
			cov.Audit = cover.NewAudit()
		}
	}
	// The snapshot wants every view the platform supports: the guest edges
	// always, the taint heatmap and policy audit when a policy is loaded.
	if *snapOut != "" {
		if cov == nil {
			cov = &cover.Cover{}
		}
		if cov.Guest == nil {
			cov.Guest = cover.NewGuest()
		}
		if pol != nil {
			if cov.Taint == nil {
				cov.Taint = cover.NewTaint()
			}
			if cov.Audit == nil {
				cov.Audit = cover.NewAudit()
			}
		}
	}
	// Live telemetry: -timeseries without an explicit cadence samples at the
	// 1 ms default.
	var smp *telemetry.Sampler
	if *sampleEvery > 0 || *timeseriesOut != "" {
		smp = telemetry.NewSampler(telemetry.Options{
			Every: kernel.Time((*sampleEvery).Nanoseconds()),
		})
	}
	if *decoupled && pol == nil {
		fmt.Fprintln(os.Stderr, "-decoupled needs a policy (see -policy)")
		os.Exit(2)
	}
	pl, err := soc.New(soc.Config{Policy: pol, DecoupledTaint: *decoupled, Obs: observer, Trace: tr, Cover: cov, Telemetry: smp, FlightOff: *noFlight})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer pl.Shutdown()
	if *mapFlag {
		fmt.Fprintln(os.Stderr, "memory map:")
		for _, r := range pl.Bus.Ranges() {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
	}
	if err := pl.Load(img); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, spec := range splitNonEmpty(*watch) {
		name, probe := spec, spec
		if i := strings.IndexByte(spec, ':'); i >= 0 {
			name, probe = spec[:i], spec[i+1:]
		}
		addr, ok := img.Symbol(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown symbol %q\n", name)
			os.Exit(2)
		}
		if err := pl.AddMemProbe(probe, addr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if pl.IsDIFT() {
			if err := pl.AddTagProbe(probe+"_tag", addr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	if *disasN > 0 {
		remaining := *disasN
		tracer := func(pc, insn uint32) {
			if remaining == 0 {
				return
			}
			remaining--
			loc := ""
			if name, off, ok := img.SymbolAt(pc); ok {
				loc = fmt.Sprintf(" <%s+0x%x>", name, off)
			}
			fmt.Fprintf(os.Stderr, "%08x:  %08x  %-32s%s\n", pc, insn, rv32.Disassemble(insn, pc), loc)
		}
		if pl.Core != nil {
			pl.Core.Tracer = tracer
		} else {
			pl.TaintCore.Tracer = tracer
		}
	}
	if *stdin != "" {
		pl.UART.Inject([]byte(*stdin))
	}

	runErr := pl.Run(kernel.Time(*horizonMS) * kernel.MS)
	os.Stdout.Write(pl.UART.Output())

	if *taintMap && pl.IsDIFT() {
		fmt.Fprintln(os.Stderr, "\ntaint census (RAM bytes per class):")
		for class, n := range pl.TaintSummary() {
			fmt.Fprintf(os.Stderr, "  %-12s %d\n", class, n)
		}
		ranges := pl.TaintedRanges()
		fmt.Fprintf(os.Stderr, "tainted ranges (%d):\n", len(ranges))
		const maxShown = 32
		for i, r := range ranges {
			if i == maxShown {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(ranges)-maxShown)
				break
			}
			fmt.Fprintln(os.Stderr, "  "+r)
		}
	}

	writeExports(pl, observer, *metricsOut, *eventsOut, *chromeOut)
	writeTraceExports(pl, tr, *vcdOut, *profileOut, *foldedOut, *ktOut)
	writeCoverExports(cov, img, flag.Arg(0), *coverOut, *lcovOut, *heatOut, *auditOut, *auditJSONOut)
	if *snapOut != "" {
		name := strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".s")
		snap := pl.CoverSnapshot(name, *policyName)
		exportTo(*snapOut, func(f *os.File) error {
			_, err := f.Write(snap.JSON())
			return err
		})
	}
	if smp != nil {
		exportTo(*timeseriesOut, func(f *os.File) error {
			if strings.HasSuffix(*timeseriesOut, ".csv") {
				return smp.WriteCSV(f)
			}
			return smp.WriteJSONL(f)
		})
	}
	if *forensicsDir != "" {
		b := pl.LastForensics()
		if b == nil {
			// No terminal violation or fault: a run that never exited ended
			// on the horizon, worth a snapshot of where the guest got stuck.
			if exited, _ := pl.Exited(); !exited {
				b = pl.Snapshot("horizon")
			}
		}
		name := strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".s")
		writeForensics(*forensicsDir, name, b)
	}

	var v *core.Violation
	switch {
	case errors.As(runErr, &v):
		fmt.Fprintf(os.Stderr, "\nSECURITY VIOLATION: %v\n", v)
		if *why {
			annotate := func(ev core.TaintEvent) string {
				if ev.PC == 0 || ev.Insn == 0 {
					return ""
				}
				s := rv32.Disassemble(ev.Insn, ev.PC)
				if name, off, ok := img.SymbolAt(ev.PC); ok {
					s += fmt.Sprintf(" <%s+0x%x>", name, off)
				}
				return s
			}
			fmt.Fprintf(os.Stderr, "provenance (classification -> failed check):\n%s",
				v.ProvenanceReport(annotate))
		}
		os.Exit(3)
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "\nerror: %v\n", runErr)
		os.Exit(1)
	}
	exited, code := pl.Exited()
	fmt.Fprintf(os.Stderr, "\n[exited=%v code=%d instret=%d simtime=%v]\n",
		exited, code, pl.Instret(), pl.Sim.Now())
	if exited {
		os.Exit(int(code) & 0x7f)
	}
}

// writeForensics exports a forensic bundle as <dir>/<name>.forensics.json
// plus the human-readable report alongside. A nil bundle (clean exit, or the
// recorder disabled) writes nothing.
func writeForensics(dir, name string, b *flight.Bundle) {
	if b == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	jsonPath := filepath.Join(dir, name+".forensics.json")
	if err := os.WriteFile(jsonPath, b.JSON(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	exportTo(filepath.Join(dir, name+".forensics.txt"), func(f *os.File) error {
		return b.WriteReport(f)
	})
	fmt.Fprintf(os.Stderr, "forensics: %s (%s)\n", jsonPath, b.Reason)
}

// openOut opens an export destination; "-" means stderr.
func openOut(path string) (*os.File, bool) {
	if path == "-" {
		return os.Stderr, false
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return f, true
}

// exportTo writes one export through fn, reporting errors without aborting
// the remaining exports.
func exportTo(path string, fn func(*os.File) error) {
	if path == "" {
		return
	}
	f, closeit := openOut(path)
	if err := fn(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if closeit {
		f.Close()
	}
}

// writeExports dumps the observer's metrics and event stream in the formats
// requested on the command line. The Chrome export merges the kernel/bus
// records when kernel tracing is active.
func writeExports(pl *soc.Platform, o *obs.Observer, metricsOut, eventsOut, chromeOut string) {
	if o == nil {
		return
	}
	exportTo(metricsOut, func(f *os.File) error {
		return obs.WriteMetricsJSON(f, pl.MetricsSnapshot())
	})
	exportTo(eventsOut, func(f *os.File) error { return o.WriteJSONL(f) })
	exportTo(chromeOut, func(f *os.File) error {
		var kt *trace.KernelTrace
		if t := pl.Trace(); t != nil {
			kt = t.Kernel
		}
		return trace.WriteChromeTrace(f, kt, o)
	})
}

// writeTraceExports dumps the simulation-side trace views: waveform, profile
// top table, folded stacks, and the kernel event stream.
func writeTraceExports(pl *soc.Platform, tr *trace.Trace, vcdOut, profileOut, foldedOut, ktOut string) {
	if tr == nil {
		return
	}
	if tr.VCD != nil {
		// Capture the final state so the waveform extends to the end of the
		// run.
		tr.VCD.Sample(uint64(pl.Sim.Now()))
	}
	exportTo(vcdOut, func(f *os.File) error { return tr.VCD.Dump(f) })
	exportTo(profileOut, func(f *os.File) error { return tr.Prof.WriteTop(f, 30) })
	exportTo(foldedOut, func(f *os.File) error { return tr.Prof.WriteFolded(f) })
	exportTo(ktOut, func(f *os.File) error { return tr.Kernel.WriteJSONL(f) })
}

// writeCoverExports dumps the coverage views: guest coverage report, lcov
// line coverage, taint heatmap, and the policy audit (text and JSON).
func writeCoverExports(cov *cover.Cover, img *asm.Image, srcName, coverOut, lcovOut, heatOut, auditOut, auditJSONOut string) {
	if cov == nil {
		return
	}
	if g := cov.Guest; g != nil {
		exportTo(coverOut, func(f *os.File) error { return g.WriteReport(f, rv32.Disassemble) })
		exportTo(lcovOut, func(f *os.File) error { return g.WriteLcov(f, srcName) })
	}
	if t := cov.Taint; t != nil {
		symAt := func(addr uint32) string {
			if name, off, ok := img.SymbolAt(addr); ok {
				return fmt.Sprintf("%s+0x%x", name, off)
			}
			return ""
		}
		exportTo(heatOut, func(f *os.File) error { return t.WriteHeat(f, symAt) })
	}
	if a := cov.Audit; a != nil && a.Configured() {
		exportTo(auditOut, func(f *os.File) error { return a.WriteReport(f) })
		exportTo(auditJSONOut, func(f *os.File) error { return a.WriteJSON(f) })
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
