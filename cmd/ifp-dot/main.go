// Command ifp-dot renders the paper's Fig. 1 information-flow policies (and
// the per-byte-key lattice of the immobilizer fix) as Graphviz digraphs.
//
// Usage:
//
//	ifp-dot [ifp1|ifp2|ifp3|perbyte]     # default: all four
//	ifp-dot ifp3 | dot -Tsvg > ifp3.svg
//
// With -cover, the covering edges of ONE lattice are annotated with the flow
// hit counts of a policy-audit JSON export (vp-run/immo -policy-audit-json):
// hot edges are colored by traffic, edges the run never queried are dashed —
// making dead lattice structure visible at a glance:
//
//	immo -policy-audit-json audit.json
//	ifp-dot -cover audit.json ifp3 | dot -Tsvg > ifp3-heat.svg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vpdift/internal/core"
)

func main() {
	coverPath := flag.String("cover", "", "policy-audit JSON file; annotate the lattice's covering edges with its flow hit counts")
	flag.Parse()

	lattices := map[string]func() (*core.Lattice, error){
		"ifp1": func() (*core.Lattice, error) { return core.IFP1(), nil },
		"ifp2": func() (*core.Lattice, error) { return core.IFP2(), nil },
		"ifp3": func() (*core.Lattice, error) { return core.IFP3(), nil },
		"perbyte": func() (*core.Lattice, error) {
			integ, err := core.PerByteKeyIntegrity(4)
			if err != nil {
				return nil, err
			}
			return core.Product(core.IFP1(), integ)
		},
	}
	order := []string{"ifp1", "ifp2", "ifp3", "perbyte"}
	args := flag.Args()
	if len(args) == 0 {
		args = order
	}

	if *coverPath != "" {
		if len(args) != 1 {
			log.Fatalf("-cover annotates exactly one lattice (have %v)", args)
		}
		build, ok := lattices[args[0]]
		if !ok {
			log.Fatalf("unknown lattice %q (have: %v)", args[0], order)
		}
		l, err := build()
		if err != nil {
			log.Fatal(err)
		}
		dot, err := coverDOT(l, args[0], *coverPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(dot)
		return
	}

	for _, name := range args {
		build, ok := lattices[name]
		if !ok {
			log.Fatalf("unknown lattice %q (have: %v)", name, order)
		}
		l, err := build()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(l.DOT(name))
	}
}

// auditCounts is the slice of the policy-audit JSON export the annotation
// needs: the class list (defining matrix order) and the flow-query matrix.
type auditCounts struct {
	Classes []string   `json:"classes"`
	Flow    [][]uint64 `json:"flow"`
}

// coverDOT renders the lattice like Lattice.DOT but annotates every covering
// edge with the audit's flow hit count for that class pair: labeled and
// heat-colored when exercised, dashed grey when the run never queried it.
func coverDOT(l *core.Lattice, name, path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var audit auditCounts
	if err := json.Unmarshal(raw, &audit); err != nil {
		return "", fmt.Errorf("%s: %v", path, err)
	}
	classes := l.Classes()
	n := len(classes)
	if len(audit.Classes) != n {
		return "", fmt.Errorf("%s: audit has %d classes, lattice %q has %d — wrong lattice?",
			path, len(audit.Classes), name, n)
	}
	for i, c := range audit.Classes {
		if c != classes[i] {
			return "", fmt.Errorf("%s: audit class %d is %q, lattice %q has %q — wrong lattice?",
				path, i, c, name, classes[i])
		}
	}
	if len(audit.Flow) != n {
		return "", fmt.Errorf("%s: flow matrix is %dx?, want %dx%d", path, len(audit.Flow), n, n)
	}

	tag := func(i int) core.Tag { return core.Tag(i) }
	covering := func(i, j int) bool {
		if i == j || !l.AllowedFlow(tag(i), tag(j)) {
			return false
		}
		for k := 0; k < n; k++ {
			if k != i && k != j && l.AllowedFlow(tag(i), tag(k)) && l.AllowedFlow(tag(k), tag(j)) {
				return false
			}
		}
		return true
	}

	var max uint64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if covering(i, j) && audit.Flow[i][j] > max {
				max = audit.Flow[i][j]
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n  node [shape=box];\n", name+"-cover")
	for _, c := range classes {
		fmt.Fprintf(&b, "  %q;\n", c)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !covering(i, j) {
				continue
			}
			hits := audit.Flow[i][j]
			if hits == 0 {
				fmt.Fprintf(&b, "  %q -> %q [style=dashed, color=\"#999999\", label=\"0\"];\n",
					classes[i], classes[j])
				continue
			}
			fmt.Fprintf(&b, "  %q -> %q [color=%q, penwidth=%.1f, label=\"%d\"];\n",
				classes[i], classes[j], heatColor(hits, max), 1.0+2.0*float64(hits)/float64(max), hits)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// heatColor maps a hit count onto a cold-to-hot edge color relative to the
// busiest covering edge.
func heatColor(hits, max uint64) string {
	switch {
	case hits*3 <= max:
		return "#fdbe85" // cool: light orange
	case hits*3 <= 2*max:
		return "#fd8d3c" // warm: orange
	default:
		return "#d94701" // hot: dark red
	}
}
