// Command ifp-dot renders the paper's Fig. 1 information-flow policies (and
// the per-byte-key lattice of the immobilizer fix) as Graphviz digraphs.
//
// Usage:
//
//	ifp-dot [ifp1|ifp2|ifp3|perbyte]     # default: all four
//	ifp-dot ifp3 | dot -Tsvg > ifp3.svg
package main

import (
	"fmt"
	"log"
	"os"

	"vpdift/internal/core"
)

func main() {
	lattices := map[string]func() (*core.Lattice, error){
		"ifp1": func() (*core.Lattice, error) { return core.IFP1(), nil },
		"ifp2": func() (*core.Lattice, error) { return core.IFP2(), nil },
		"ifp3": func() (*core.Lattice, error) { return core.IFP3(), nil },
		"perbyte": func() (*core.Lattice, error) {
			integ, err := core.PerByteKeyIntegrity(4)
			if err != nil {
				return nil, err
			}
			return core.Product(core.IFP1(), integ)
		},
	}
	order := []string{"ifp1", "ifp2", "ifp3", "perbyte"}
	args := os.Args[1:]
	if len(args) == 0 {
		args = order
	}
	for _, name := range args {
		build, ok := lattices[name]
		if !ok {
			log.Fatalf("unknown lattice %q (have: %v)", name, order)
		}
		l, err := build()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(l.DOT(name))
	}
}
