// Command vp-diff compares two coverage snapshots and guards against
// regression: lost control-flow edges, rules that fell dead, or detection
// verdicts that flipped between the runs.
//
// Usage:
//
//	vp-diff [flags] <baseline> <candidate>
//
// Each argument is a JSON file holding a coverage snapshot in any of the
// shapes the platform emits:
//
//   - a raw snapshot (vp-run -cover-snapshot, wk-suite -cover-out,
//     vp-load -cover-dir, or GET .../coverage?format=snapshot)
//   - a v1 API envelope whose data carries a campaign rollup ("merged")
//     or a session result ("cover")
//   - a bare session result or campaign rollup saved without the envelope
//
// The human report goes to stdout; -json additionally writes the machine
// DiffReport. Exit status: 0 when the candidate holds or extends the
// baseline's coverage, 1 on regression (the report names every lost edge,
// newly-dead rule and verdict flip), 2 on usage or load errors — so a CI
// job needs nothing beyond the exit code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vpdift/internal/cover"
)

func main() {
	jsonOut := flag.String("json", "", "write the machine-readable diff report to this file ('-' for stdout)")
	frontier := flag.Bool("frontier", false, "also print the candidate's frontier contribution over the baseline")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: vp-diff [flags] <baseline.json> <candidate.json>")
		os.Exit(2)
	}

	base, err := loadSnapshot(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "vp-diff: baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := loadSnapshot(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "vp-diff: candidate: %v\n", err)
		os.Exit(2)
	}

	d := cover.Diff(base, cand)
	if err := d.WriteReport(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *frontier {
		f := cand.Frontier(base)
		fmt.Printf("\nfrontier: %d new edges, %d new blocks, %d new taint bytes, %d new verdicts\n",
			f.NewEdges, f.NewBlocks, f.NewTaintBytes, f.NewVerdicts)
		for _, e := range f.Edges {
			fmt.Printf("  + %s\n", e)
		}
	}
	if *jsonOut != "" {
		if err := writeOut(*jsonOut, d.JSON()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if d.Regression() {
		os.Exit(1)
	}
}

// loadSnapshot reads a snapshot in any emitted shape: raw, enveloped, or
// embedded in a session result / campaign rollup.
func loadSnapshot(path string) (*cover.Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if snap, ok := sniff(raw); ok {
		return snap, nil
	}
	return nil, fmt.Errorf("%s: no coverage snapshot found (want schema %q, a \"cover\" result field, or a \"merged\" campaign rollup)",
		path, cover.SnapshotSchema)
}

// sniff walks the known container shapes, innermost snapshot first.
func sniff(raw []byte) (*cover.Snapshot, bool) {
	var probe struct {
		Schema string          `json:"schema"`
		Data   json.RawMessage `json:"data"`
		Cover  json.RawMessage `json:"cover"`
		Merged json.RawMessage `json:"merged"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, false
	}
	if probe.Schema == cover.SnapshotSchema {
		snap, err := cover.ParseSnapshot(raw)
		return snap, err == nil
	}
	for _, inner := range [][]byte{probe.Cover, probe.Merged, probe.Data} {
		if len(inner) > 0 && string(inner) != "null" {
			if snap, ok := sniff(inner); ok {
				return snap, true
			}
		}
	}
	return nil, false
}

func writeOut(path string, b []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
