// Command perf regenerates Table II of the paper: the performance overhead
// of the VP-based DIFT engine over the seven benchmark workloads, comparing
// the baseline platform (VP) against the DIFT platform (VP+).
//
// Usage:
//
//	perf [-scale small|medium|large] [-only name] [-json [file]]
//
// Absolute MIPS depend on the host; the reproduced quantity is the
// per-workload overhead factor.
package main

import (
	"flag"
	"fmt"
	"os"

	"vpdift/internal/perf"
)

func main() {
	scaleFlag := flag.String("scale", "small", "workload scale: small, medium or large")
	only := flag.String("only", "", "run a single benchmark by name")
	tlmMem := flag.Bool("tlm-mem", false, "route VP+ data accesses through full TLM transactions (the paper's memory-interface organization)")
	jsonOut := flag.String("json", "", "also write the comparison as JSON to this file (e.g. BENCH_table2.json)")
	flag.Parse()

	scale, err := perf.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var rows []perf.Row
	for _, w := range perf.Workloads(scale) {
		if *only != "" && w.Name != *only {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", w.Name)
		row, err := perf.RunRowCfg(w, *tlmMem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "no benchmark named %q\n", *only)
		os.Exit(2)
	}
	fmt.Println("Table II: performance overhead of the DIFT engine (VP vs VP+)")
	fmt.Print(perf.Table(rows))
	if *jsonOut != "" {
		rep := perf.NewReport(*scaleFlag, *tlmMem, rows)
		if err := rep.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}
