// Command perf regenerates Table II of the paper: the performance overhead
// of the VP-based DIFT engine over the seven benchmark workloads, comparing
// the baseline platform (VP) against the DIFT platform (VP+).
//
// Usage:
//
//	perf [-scale small|medium|large] [-only name] [-reps n] [-json [file]]
//
// Absolute MIPS depend on the host; the reproduced quantity is the
// per-workload overhead factor.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"vpdift/internal/kernel"
	"vpdift/internal/perf"
	"vpdift/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "small", "workload scale: small, medium or large")
	only := flag.String("only", "", "run a single benchmark by name")
	tlmMem := flag.Bool("tlm-mem", false, "route VP+ data accesses through full TLM transactions (the paper's memory-interface organization)")
	jsonOut := flag.String("json", "", "also write the comparison as JSON to this file (e.g. BENCH_table2.json)")
	baseline := flag.String("baseline", "", "compare against an archived report and fail on MIPS regression (the CI perf guard)")
	regress := flag.Float64("regress", 0.10, "allowed fractional MIPS drop vs -baseline before failing")
	reps := flag.Int("reps", 1, "run each flavour this many times and keep the fastest (denoises shared runners; the guard uses 3)")
	decoupled := flag.Bool("decoupled", false, "also measure the VP+ with the decoupled taint monitor and fail unless its average overhead beats the inline VP+")
	flightGuard := flag.Bool("flight", false, "also re-measure the table with the flight recorder disabled and fail unless the recorder-on average overhead stays within 5% of recorder-off")
	profileSmoke := flag.Bool("profile", false, "also run one workload with the trace layer attached and print its hot-path top table (trace smoke test)")
	coverSmoke := flag.Bool("cover", false, "also run one workload with the coverage subsystem attached and check it stays within the Table II band of -baseline (coverage smoke test)")
	telemetrySmoke := flag.Bool("telemetry", false, "also run one workload with the live-telemetry sampler attached and check the captured timeseries (telemetry smoke test)")
	sampleEvery := flag.Duration("sample-every", time.Millisecond, "simulated-time sampling period of the -telemetry smoke run (recorded in the -json meta block)")
	flag.Parse()

	scale, err := perf.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var rows []perf.Row
	for _, w := range perf.Workloads(scale) {
		if *only != "" && w.Name != *only {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", w.Name)
		row, err := perf.RunRowBestOpts(w, *tlmMem, *reps, *decoupled)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "no benchmark named %q\n", *only)
		os.Exit(2)
	}
	fmt.Println("Table II: performance overhead of the DIFT engine (VP vs VP+)")
	fmt.Print(perf.Table(rows))
	if *jsonOut != "" {
		rep := perf.NewReport(*scaleFlag, *tlmMem, rows)
		meta := perf.NewReportMeta(*reps, kernel.Time((*sampleEvery).Nanoseconds()))
		rep.Meta = &meta
		if err := rep.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if *baseline != "" {
		base, err := perf.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if base.Scale != *scaleFlag || base.TLMMem != *tlmMem {
			fmt.Fprintf(os.Stderr, "baseline %s is scale=%s tlm_mem=%v; run with matching flags\n",
				*baseline, base.Scale, base.TLMMem)
			os.Exit(2)
		}
		msgs := perf.CheckRegression(base, rows, *regress)
		for _, m := range msgs {
			fmt.Fprintln(os.Stderr, "PERF REGRESSION: "+m)
		}
		if len(msgs) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "perf guard: all workloads within %.0f%% of %s\n",
			*regress*100, *baseline)
	}
	if *decoupled {
		// The decoupled-monitor guard: running propagation on a parallel core
		// must lower the average Table II overhead below the inline VP+.
		var sumOv, sumOvDec float64
		for _, r := range rows {
			sumOv += r.Overhead()
			sumOvDec += r.OverheadDecoupled()
		}
		n := float64(len(rows))
		avgOv, avgOvDec := sumOv/n, sumOvDec/n
		if avgOvDec <= 0 || avgOvDec >= avgOv {
			fmt.Fprintf(os.Stderr,
				"decoupled guard FAILED: decoupled average overhead %.2fx does not improve on inline %.2fx\n",
				avgOvDec, avgOv)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "decoupled guard: average overhead %.2fx vs inline %.2fx\n",
			avgOvDec, avgOv)
	}
	if *flightGuard {
		// The flight-recorder guard: the always-on recorder must not distort
		// the reproduced quantity. The default rows above were measured as
		// shipped (recorder on); re-measure with the recorder disabled and
		// require the average overhead factors to agree within 5%.
		var offRows []perf.Row
		for _, w := range perf.Workloads(scale) {
			if *only != "" && w.Name != *only {
				continue
			}
			fmt.Fprintf(os.Stderr, "running %s (flight recorder off)...\n", w.Name)
			row, err := perf.RunRowConfig(w, perf.RowConfig{TLMMem: *tlmMem, Reps: *reps, FlightOff: true})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			offRows = append(offRows, row)
		}
		var sumOn, sumOff float64
		for _, r := range rows {
			sumOn += r.Overhead()
		}
		for i, r := range offRows {
			sumOff += r.Overhead()
			on := rows[i]
			fmt.Fprintf(os.Stderr, "flight guard: %-16s VP %7.1f/%7.1f MIPS  VP+ %7.1f/%7.1f MIPS  overhead %.2fx/%.2fx (on/off)\n",
				r.Name, on.VP.MIPS(), r.VP.MIPS(), on.VPPlus.MIPS(), r.VPPlus.MIPS(),
				on.Overhead(), r.Overhead())
		}
		avgOn, avgOff := sumOn/float64(len(rows)), sumOff/float64(len(offRows))
		delta := avgOn/avgOff - 1
		fmt.Fprintf(os.Stderr, "flight guard: recorder-on average overhead %.2fx vs recorder-off %.2fx (%+.1f%%)\n",
			avgOn, avgOff, delta*100)
		if avgOff <= 0 || delta > 0.05 || delta < -0.05 {
			fmt.Fprintln(os.Stderr, "flight guard FAILED: recorder-on average overhead deviates more than 5% from recorder-off")
			os.Exit(1)
		}
	}
	if *profileSmoke {
		w := perf.Workloads(scale)[0]
		fmt.Fprintf(os.Stderr, "profile smoke: %s on the VP+ with kernel trace and profiler attached\n", w.Name)
		prof, m, err := perf.ProfileSmoke(w, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := prof.WriteTop(os.Stdout, 10); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		hot, _ := prof.Hottest()
		att := prof.Attributed()
		fmt.Fprintf(os.Stderr, "profile smoke: %.1f MIPS traced, hottest %q, %.1f%% of cycles attributed\n",
			m.MIPS(), hot, att*100)
		if hot == "" || att < 0.9 {
			fmt.Fprintln(os.Stderr, "profile smoke FAILED: attribution below 90% or no hottest function")
			os.Exit(1)
		}
	}
	if *coverSmoke {
		w := perf.Workloads(scale)[0]
		fmt.Fprintf(os.Stderr, "cover smoke: %s on the VP+ with guest coverage, taint heatmap and policy audit attached\n", w.Name)
		cv, m, err := perf.CoverSmoke(w, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stats := cv.Guest.Stats()
		fmt.Fprintf(os.Stderr, "cover smoke: %.1f MIPS covered; %s; %d bytes ever tainted; %d fetch checks\n",
			m.MIPS(), cv.Guest.Summary(), cv.Taint.EverTainted(), cv.Audit.Fetch.Checks)
		if stats.InsnsCovered == 0 || stats.EdgesCovered == 0 ||
			cv.Taint.EverTainted() == 0 || cv.Audit.Fetch.Checks == 0 {
			fmt.Fprintln(os.Stderr, "cover smoke FAILED: a coverage view recorded nothing")
			os.Exit(1)
		}
		if *baseline != "" {
			base, err := perf.ReadFile(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, b := range base.Rows {
				if b.Name != w.Name || b.VPPlusMIPS <= 0 {
					continue
				}
				// Coverage adds per-retire work comparable to tag tracking
				// itself, so the band is deliberately generous: the smoke only
				// catches pathological slowdowns (an accidental scan per
				// retire), not ordinary noise.
				const band = 0.25
				if m.MIPS() < b.VPPlusMIPS*band {
					fmt.Fprintf(os.Stderr,
						"cover smoke FAILED: %.1f MIPS is below %.0f%% of the archived VP+ %.1f MIPS\n",
						m.MIPS(), band*100, b.VPPlusMIPS)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "cover smoke: within the Table II band (>= %.0f%% of VP+ %.1f MIPS)\n",
					band*100, b.VPPlusMIPS)
			}
		}
	}
	if *telemetrySmoke {
		w := perf.Workloads(scale)[0]
		every := kernel.Time((*sampleEvery).Nanoseconds())
		fmt.Fprintf(os.Stderr, "telemetry smoke: %s on the VP+ with a %v sampler attached\n", w.Name, *sampleEvery)
		smp, m, err := perf.TelemetrySmoke(w, true, every)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		samples := smp.Samples()
		fmt.Fprintf(os.Stderr, "telemetry smoke: %.1f MIPS sampled, %d samples captured\n",
			m.MIPS(), len(samples))
		if len(samples) < 2 {
			fmt.Fprintln(os.Stderr, "telemetry smoke FAILED: fewer than 2 samples captured")
			os.Exit(1)
		}
		for i := 1; i < len(samples); i++ {
			if samples[i].Time <= samples[i-1].Time ||
				samples[i].Metrics["sim.instret"] < samples[i-1].Metrics["sim.instret"] {
				fmt.Fprintln(os.Stderr, "telemetry smoke FAILED: timeseries is not monotone")
				os.Exit(1)
			}
		}
		last := samples[len(samples)-1]
		var buf bytes.Buffer
		if err := telemetry.WritePrometheus(&buf, last.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := telemetry.ValidateExposition(buf.String()); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry smoke FAILED: exposition invalid: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry smoke: timeseries monotone, final instret %d, exposition valid\n",
			last.Metrics["sim.instret"])
	}
}
