// Command vp-serve runs a simulation-session server: preloaded sessions and
// any number of API-submitted ones execute on a bounded worker pool while
// their live telemetry streams over HTTP, so a long immobilizer run, a
// benchmark sweep, or a policy x workload campaign can be driven and watched
// from curl, a dashboard, or a real Prometheus scraper.
//
// Usage:
//
//	vp-serve [-addr host:port] [-workers N] [-queue-depth N] [-store dir]
//	         [-sessions immo,qsort,...] [-sample-every 1ms]
//
// The versioned API (see api.md for the full route table):
//
//	POST   /api/v1/sessions               submit a session spec
//	GET    /api/v1/sessions               session list
//	GET    /api/v1/sessions/{id}          one session
//	DELETE /api/v1/sessions/{id}          cancel/end a session
//	GET    /api/v1/sessions/{id}/result   final result (409 until done)
//	GET    /api/v1/sessions/{id}/timeseries  sampler ring (?format=jsonl|csv)
//	GET    /api/v1/sessions/{id}/events   SSE tail of the observer ring
//	POST   /api/v1/campaigns              run a policies x workloads grid
//	GET    /api/v1/campaigns/{id}/results cell results (paginated or ?stream=sse)
//	GET    /api/v1/results/{key}          result-store entry by content hash
//	GET    /healthz, /metrics             liveness, Prometheus exposition
//
// The pre-v1 routes (/api/sessions...) still work and answer with a
// Deprecation header pointing at their successors.
//
// Results are deduplicated by (image, policy, stimulus) content hash;
// -store persists them to a directory so repeat submissions across restarts
// are cache hits. On SIGINT/SIGTERM the server stops intake, drains the
// queue for -drain-timeout, then cancels the remainder and exits.
//
// The default preloaded session is the immobilizer of the Section VI-A case
// study under its base policy, fed a fresh challenge every -challenge-every
// of simulated time — an endless authentication loop whose taint events
// stream on /events. Any driverless Table II workload name (qsort,
// dhrystone, primes, sha512) preloads that benchmark on the VP+ instead;
// -sessions ” preloads nothing and leaves the server to the API.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vpdift/internal/kernel"
	"vpdift/internal/serve"
	"vpdift/internal/telemetry"
)

var (
	addr           = flag.String("addr", "127.0.0.1:8372", "HTTP listen address")
	workersFlag    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth     = flag.Int("queue-depth", telemetry.DefaultQueueDepth, "pending-session queue capacity")
	storeDir       = flag.String("store", "", "persist results to this directory (default in-memory)")
	sessionTimeout = flag.Duration("session-timeout", 0, "default wall-clock timeout per session (0 = none)")
	drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight sessions")
	sessionsFlag   = flag.String("sessions", "immo", "comma-separated sessions to preload: immo, micro, a Table II workload, or wk-N")
	scaleFlag      = flag.String("scale", "small", "workload scale for Table II sessions: small, medium or large")
	sampleEvery    = flag.Duration("sample-every", time.Millisecond, "simulated-time metrics sampling period for preloaded sessions")
	stepFlag       = flag.Duration("step", time.Millisecond, "simulated time each session advances per locked chunk")
	horizonFlag    = flag.Duration("horizon", 0, "stop each preloaded session at this much simulated time (0 runs until the guest exits)")
	challengeEvery = flag.Duration("challenge-every", 5*time.Millisecond, "simulated time between immobilizer challenges")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	factory := &serve.Factory{
		ChallengeEvery: kernel.Time((*challengeEvery).Nanoseconds()),
	}
	opts := []telemetry.ServerOption{
		telemetry.WithFactory(factory),
		telemetry.WithQueueDepth(*queueDepth),
	}
	if *workersFlag > 0 {
		opts = append(opts, telemetry.WithWorkers(*workersFlag))
	}
	if *sessionTimeout > 0 {
		opts = append(opts, telemetry.WithSessionTimeout(*sessionTimeout))
	}
	if *storeDir != "" {
		st, err := telemetry.NewFileStore(*storeDir)
		if err != nil {
			return err
		}
		opts = append(opts, telemetry.WithResultStore(st))
		fmt.Fprintf(os.Stderr, "result store %s (%d results)\n", *storeDir, st.Len())
	}
	sv := telemetry.NewServer(opts...)
	defer sv.Close()

	if err := preload(sv, factory); err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: sv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving on http://%s — %d workers, queue depth %d; try /healthz, /api/v1/sessions\n",
		*addr, sv.Workers(), *queueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "%v: draining (up to %v)...\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := sv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "drain incomplete (%v); canceling remaining sessions\n", err)
		}
		sv.Close()
		st := sv.Stats()
		fmt.Fprintf(os.Stderr, "done: %d completed, %d canceled, %d cache hits\n",
			st.Completed, st.Canceled, st.CacheHits)
		shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel2()
		return httpSrv.Shutdown(shutdownCtx)
	}
}

// preload submits the -sessions list through the factory before the listener
// starts, preserving the pre-pool behavior of a server that is already
// simulating when the first scrape lands.
func preload(sv *telemetry.Server, factory *serve.Factory) error {
	step := kernel.Time((*stepFlag).Nanoseconds())
	for _, name := range strings.Split(*sessionsFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec := telemetry.SessionSpec{
			Workload:  name,
			Scale:     *scaleFlag,
			HorizonMs: (*horizonFlag).Milliseconds(),
			SampleUs:  (*sampleEvery).Microseconds(),
			Observe:   true,
		}
		cfg, err := factory.Build(spec)
		if err != nil {
			return fmt.Errorf("vp-serve: session %q: %w", name, err)
		}
		cfg.ID = name
		cfg.Step = step
		key, err := factory.Key(spec)
		if err == nil {
			cfg.Key = key
		}
		if err := sv.Submit(cfg); err != nil {
			return fmt.Errorf("vp-serve: session %q: %w", name, err)
		}
		fmt.Fprintf(os.Stderr, "session %q queued (sample every %v)\n", name, *sampleEvery)
	}
	return nil
}
