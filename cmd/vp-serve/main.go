// Command vp-serve runs one or more simulation sessions and serves their
// live telemetry over HTTP, so a long immobilizer or benchmark run can be
// watched from curl, a dashboard, or a real Prometheus scraper while it
// executes.
//
// Usage:
//
//	vp-serve [-addr host:port] [-sessions immo,qsort,...] [-sample-every 1ms]
//
// Endpoints (see telemetry.Server.Handler):
//
//	GET /healthz                        liveness + session count
//	GET /metrics                        Prometheus text format, all sessions
//	GET /api/sessions                   session list as JSON
//	GET /api/sessions/{id}/timeseries   sampler ring as JSONL (?format=csv)
//	GET /api/sessions/{id}/events       SSE tail of the observer event ring
//
// The default session is the immobilizer of the Section VI-A case study
// under its base policy, fed a fresh challenge every -challenge-every of
// simulated time — an endless authentication loop whose taint events stream
// on /events. Any Table II workload name (qsort, dhrystone, primes, sha512,
// simple-sensor, freertos-tasks) runs that benchmark on the VP+ instead; it
// ends when the guest exits.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"vpdift/internal/immo"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/perf"
	"vpdift/internal/soc"
	"vpdift/internal/telemetry"
)

var (
	addr           = flag.String("addr", "127.0.0.1:8372", "HTTP listen address")
	sessionsFlag   = flag.String("sessions", "immo", "comma-separated sessions to run: immo, or a Table II workload name")
	scaleFlag      = flag.String("scale", "small", "workload scale for Table II sessions: small, medium or large")
	sampleEvery    = flag.Duration("sample-every", time.Millisecond, "simulated-time metrics sampling period")
	stepFlag       = flag.Duration("step", time.Millisecond, "simulated time each session advances per locked chunk")
	horizonFlag    = flag.Duration("horizon", 0, "stop each session at this much simulated time (0 runs until the guest exits)")
	challengeEvery = flag.Duration("challenge-every", 5*time.Millisecond, "simulated time between immobilizer challenges")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	sv := telemetry.NewServer()
	defer sv.Close()
	for _, name := range strings.Split(*sessionsFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cfg, err := buildSession(name)
		if err != nil {
			return err
		}
		if err := sv.Add(cfg); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "session %q running (sample every %v)\n", name, *sampleEvery)
	}
	fmt.Fprintf(os.Stderr, "serving on http://%s — try /healthz, /metrics, /api/sessions\n", *addr)
	return http.ListenAndServe(*addr, sv.Handler())
}

func newSampler() *telemetry.Sampler {
	return telemetry.NewSampler(telemetry.Options{
		Every: kernel.Time((*sampleEvery).Nanoseconds()),
	})
}

func buildSession(name string) (telemetry.SessionConfig, error) {
	if name == "immo" {
		return immoSession(name)
	}
	return workloadSession(name)
}

// immoSession builds the immobilizer under the base policy with an observer
// and sampler attached, driven by an endless challenge schedule.
func immoSession(id string) (telemetry.SessionConfig, error) {
	smp := newSampler()
	e, err := immo.NewECUSampled(immo.VariantFixed, immo.PolicyBase, obs.New(), nil, nil, smp)
	if err != nil {
		return telemetry.SessionConfig{}, err
	}
	var round byte
	var next kernel.Time
	drive := func() error {
		// Called under the session lock between chunks: deliver the next
		// challenge once the previous round's simulated window has passed.
		if now := e.Platform.Sim.Now(); now >= next {
			challenge := [8]byte{round, 2, 3, 4, 5, 6, 7, 8}
			e.Platform.CAN.Deliver(0x100, challenge[:])
			round++
			next = now + kernel.Time((*challengeEvery).Nanoseconds())
		}
		return nil
	}
	return telemetry.SessionConfig{
		ID:       id,
		Platform: e.Platform,
		Sampler:  smp,
		Step:     kernel.Time((*stepFlag).Nanoseconds()),
		Horizon:  kernel.Time((*horizonFlag).Nanoseconds()),
		Drive:    drive,
	}, nil
}

// workloadSession builds a Table II workload on the VP+ with an observer and
// sampler attached; the session ends when the guest exits.
func workloadSession(name string) (telemetry.SessionConfig, error) {
	scale, err := perf.ParseScale(*scaleFlag)
	if err != nil {
		return telemetry.SessionConfig{}, err
	}
	for _, w := range perf.Workloads(scale) {
		if w.Name != name || w.Drive != nil {
			continue
		}
		img := w.Build()
		smp := newSampler()
		pl, err := soc.New(soc.Config{
			Policy:    perf.SessionPolicy(w, img),
			Obs:       obs.New(),
			Telemetry: smp,
		})
		if err != nil {
			return telemetry.SessionConfig{}, err
		}
		if err := pl.Load(img); err != nil {
			pl.Shutdown()
			return telemetry.SessionConfig{}, err
		}
		horizon := w.Horizon
		if h := kernel.Time((*horizonFlag).Nanoseconds()); h != 0 {
			horizon = h
		}
		return telemetry.SessionConfig{
			ID:       name,
			Platform: pl,
			Sampler:  smp,
			Step:     kernel.Time((*stepFlag).Nanoseconds()),
			Horizon:  horizon,
		}, nil
	}
	return telemetry.SessionConfig{}, fmt.Errorf("vp-serve: unknown session %q (immo or a driverless Table II workload)", name)
}
