// Command vp-serve runs a simulation-session server: preloaded sessions and
// any number of API-submitted ones execute on a bounded worker pool while
// their live telemetry streams over HTTP, so a long immobilizer run, a
// benchmark sweep, or a policy x workload campaign can be driven and watched
// from curl, a dashboard, or a real Prometheus scraper.
//
// Usage:
//
//	vp-serve [-addr host:port] [-workers N] [-queue-depth N] [-store dir]
//	         [-sessions immo,qsort,...] [-sample-every 1ms]
//	         [-log-level info] [-log-format text|json] [-debug-addr host:port]
//
// The versioned API (see api.md for the full route table):
//
//	POST   /api/v1/sessions               submit a session spec
//	GET    /api/v1/sessions               session list
//	GET    /api/v1/sessions/{id}          one session
//	DELETE /api/v1/sessions/{id}          cancel/end a session
//	GET    /api/v1/sessions/{id}/result   final result (409 until done)
//	GET    /api/v1/sessions/{id}/timeseries  sampler ring (?format=jsonl|csv)
//	GET    /api/v1/sessions/{id}/events   SSE tail of the observer ring
//	POST   /api/v1/campaigns              run a policies x workloads grid
//	GET    /api/v1/campaigns/{id}/results cell results (paginated or ?stream=sse)
//	GET    /api/v1/results/{key}          result-store entry by content hash
//	GET    /api/v1/trace                  fleet lifecycle as a Chrome trace
//	GET    /healthz, /readyz, /metrics    liveness, readiness, Prometheus exposition
//
// The pre-v1 routes (/api/sessions...) still work and answer with a
// Deprecation header pointing at their successors.
//
// Results are deduplicated by (image, policy, stimulus) content hash;
// -store persists them to a directory so repeat submissions across restarts
// are cache hits. On SIGINT/SIGTERM the server stops intake, drains the
// queue for -drain-timeout, then cancels the remainder and exits.
//
// The default preloaded session is the immobilizer of the Section VI-A case
// study under its base policy, fed a fresh challenge every -challenge-every
// of simulated time — an endless authentication loop whose taint events
// stream on /events. Any driverless Table II workload name (qsort,
// dhrystone, primes, sha512) preloads that benchmark on the VP+ instead;
// -sessions ” preloads nothing and leaves the server to the API.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vpdift/internal/kernel"
	"vpdift/internal/serve"
	"vpdift/internal/telemetry"
)

var (
	addr           = flag.String("addr", "127.0.0.1:8372", "HTTP listen address")
	workersFlag    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth     = flag.Int("queue-depth", telemetry.DefaultQueueDepth, "pending-session queue capacity")
	storeDir       = flag.String("store", "", "persist results to this directory (default in-memory)")
	sessionTimeout = flag.Duration("session-timeout", 0, "default wall-clock timeout per session (0 = none)")
	drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight sessions")
	sessionsFlag   = flag.String("sessions", "immo", "comma-separated sessions to preload: immo, micro, a Table II workload, or wk-N")
	scaleFlag      = flag.String("scale", "small", "workload scale for Table II sessions: small, medium or large")
	sampleEvery    = flag.Duration("sample-every", time.Millisecond, "simulated-time metrics sampling period for preloaded sessions")
	stepFlag       = flag.Duration("step", time.Millisecond, "simulated time each session advances per locked chunk")
	horizonFlag    = flag.Duration("horizon", 0, "stop each preloaded session at this much simulated time (0 runs until the guest exits)")
	challengeEvery = flag.Duration("challenge-every", 5*time.Millisecond, "simulated time between immobilizer challenges")
	logLevel       = flag.String("log-level", "info", "structured-log level: debug, info, warn or error")
	logFormat      = flag.String("log-format", "text", "structured-log format: text or json")
	debugAddr      = flag.String("debug-addr", "", "serve net/http/pprof on this address (off when empty)")
)

// newLogger builds the process logger from -log-level/-log-format; it is
// shared by vp-serve's own messages and the server's request/lifecycle logs.
func newLogger() (*slog.Logger, error) {
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return nil, fmt.Errorf("vp-serve: -log-level %q: %w", *logLevel, err)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch *logFormat {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("vp-serve: -log-format must be text or json, got %q", *logFormat)
	}
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	log, err := newLogger()
	if err != nil {
		return err
	}
	factory := &serve.Factory{
		ChallengeEvery: kernel.Time((*challengeEvery).Nanoseconds()),
	}
	opts := []telemetry.ServerOption{
		telemetry.WithFactory(factory),
		telemetry.WithQueueDepth(*queueDepth),
		telemetry.WithLogger(log),
	}
	if *workersFlag > 0 {
		opts = append(opts, telemetry.WithWorkers(*workersFlag))
	}
	if *sessionTimeout > 0 {
		opts = append(opts, telemetry.WithSessionTimeout(*sessionTimeout))
	}
	if *storeDir != "" {
		st, err := telemetry.NewFileStore(*storeDir)
		if err != nil {
			return err
		}
		opts = append(opts, telemetry.WithResultStore(st))
		log.Info("result store opened", "dir", *storeDir, "results", st.Len())
	}
	sv := telemetry.NewServer(opts...)
	defer sv.Close()

	// /readyz answers "starting" (503) until the preloaded sessions exist;
	// the listener comes up first so probes can watch the transition.
	sv.SetReady(false)
	httpSrv := &http.Server{Addr: *addr, Handler: sv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "workers", sv.Workers(), "queue_depth", *queueDepth)

	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Info("pprof listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				log.Warn("pprof listener failed", "error", err)
			}
		}()
	}

	if err := preload(sv, factory, log); err != nil {
		return err
	}
	sv.SetReady(true)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Info("signal received; draining", "signal", sig.String(), "timeout", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := sv.Drain(ctx); err != nil {
			log.Warn("drain incomplete; canceling remaining sessions", "error", err)
		}
		sv.Close()
		st := sv.Stats()
		log.Info("shutdown", "completed", st.Completed, "canceled", st.Canceled, "cache_hits", st.CacheHits)
		shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel2()
		return httpSrv.Shutdown(shutdownCtx)
	}
}

// preload submits the -sessions list through the factory while /readyz still
// answers "starting", preserving the pre-pool behavior of a server that is
// already simulating when the first scrape lands.
func preload(sv *telemetry.Server, factory *serve.Factory, log *slog.Logger) error {
	step := kernel.Time((*stepFlag).Nanoseconds())
	for _, name := range strings.Split(*sessionsFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec := telemetry.SessionSpec{
			Workload:  name,
			Scale:     *scaleFlag,
			HorizonMs: (*horizonFlag).Milliseconds(),
			SampleUs:  (*sampleEvery).Microseconds(),
			Observe:   true,
		}
		cfg, err := factory.Build(spec)
		if err != nil {
			return fmt.Errorf("vp-serve: session %q: %w", name, err)
		}
		cfg.ID = name
		cfg.Step = step
		key, err := factory.Key(spec)
		if err == nil {
			cfg.Key = key
		}
		if err := sv.Submit(cfg); err != nil {
			return fmt.Errorf("vp-serve: session %q: %w", name, err)
		}
		log.Info("session preloaded", "session", name, "sample_every", *sampleEvery)
	}
	return nil
}
