// Command immo walks through the paper's Section VI-A case study: the
// development and validation of the security policy for a car engine
// immobilizer ECU, reproducing each finding in order:
//
//  1. legitimate challenge/response authentication (declassification at
//     the AES engine lets the response leave on the CAN bus);
//  2. the UART debug memory dump leaks the PIN — found by the base policy;
//  3. the fixed firmware's dump passes;
//  4. the three attack-scenario families are detected;
//  5. the HI-overwrite entropy attack slips past the base policy and the
//     PIN byte is brute-forced from one observed exchange;
//  6. the per-byte-class policy detects the entropy attack.
package main

// The trace flags (-vcd, -profile, -folded, -chrome, -kernel-trace) attach
// the simulation-side observability layer to the step-1 authentication run
// and export its waveform, hot-path profile, and merged event timeline. The
// coverage flags (-cover, -heatmap, -policy-audit, -policy-audit-json)
// likewise attach the coverage subsystem to that run; the policy-audit
// report shows which rules of the base policy a single authentication
// exercise — and which stay dead until the later attack steps.
import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/immo"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/rv32"
	"vpdift/internal/soc"
	"vpdift/internal/telemetry"
	"vpdift/internal/trace"
)

var (
	vcdOut     = flag.String("vcd", "", "write a GTKWave-compatible waveform of the authentication run to this file")
	profileOut = flag.String("profile", "", "write the firmware hot-path profile top table to this file ('-' for stderr)")
	foldedOut  = flag.String("folded", "", "write folded call stacks (flamegraph input) to this file")
	chromeOut  = flag.String("chrome", "", "write taint, kernel and bus events as one merged Chrome trace to this file")
	ktOut      = flag.String("kernel-trace", "", "write kernel scheduler and bus events as JSONL to this file")

	coverOut     = flag.String("cover", "", "write the firmware coverage report of the authentication run to this file ('-' for stderr)")
	heatOut      = flag.String("heatmap", "", "write the taint heatmap of the authentication run to this file ('-' for stderr)")
	auditOut     = flag.String("policy-audit", "", "write the policy-audit report of the authentication run to this file ('-' for stderr)")
	auditJSONOut = flag.String("policy-audit-json", "", "write the policy-audit counters of the authentication run as JSON to this file")

	sampleEvery   = flag.Duration("sample-every", 0, "simulated-time metrics sampling period for the authentication run (e.g. 1ms; 0 disables telemetry)")
	timeseriesOut = flag.String("timeseries", "", "write the sampled metrics timeseries of the authentication run as JSONL to this file (.csv extension selects CSV)")

	forensicsDir = flag.String("forensics", "", "write each detected violation's flight-recorder bundle (JSON + report) into this directory")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// traceSetup builds the observer and trace bundle the command-line flags ask
// for (both nil when no flag is set).
func traceSetup() (*obs.Observer, *trace.Trace) {
	var o *obs.Observer
	if *chromeOut != "" {
		o = obs.New()
	}
	var tr *trace.Trace
	needKernel := *ktOut != "" || *chromeOut != ""
	if needKernel || *vcdOut != "" || *profileOut != "" || *foldedOut != "" {
		tr = &trace.Trace{}
		if needKernel {
			tr.Kernel = trace.NewKernelTrace(0)
		}
		if *vcdOut != "" {
			tr.VCD = trace.NewVCD()
		}
		if *profileOut != "" || *foldedOut != "" {
			tr.Prof = trace.NewProfiler(soc.RAMBase, soc.DefaultRAMSize)
		}
	}
	return o, tr
}

// coverSetup builds the coverage views the command-line flags ask for (nil
// when none are set).
func coverSetup() *cover.Cover {
	if *coverOut == "" && *heatOut == "" && *auditOut == "" && *auditJSONOut == "" {
		return nil
	}
	cov := &cover.Cover{}
	if *coverOut != "" {
		cov.Guest = cover.NewGuest()
	}
	if *heatOut != "" {
		cov.Taint = cover.NewTaint()
	}
	if *auditOut != "" || *auditJSONOut != "" {
		cov.Audit = cover.NewAudit()
	}
	return cov
}

// writeCoverExports dumps the requested coverage views of the traced run.
func writeCoverExports(e *immo.ECU, cov *cover.Cover) {
	if cov == nil {
		return
	}
	if g := cov.Guest; g != nil {
		exportTo(*coverOut, func(f *os.File) error { return g.WriteReport(f, rv32.Disassemble) })
	}
	if t := cov.Taint; t != nil {
		symAt := func(addr uint32) string {
			if name, off, ok := e.Image.SymbolAt(addr); ok {
				return fmt.Sprintf("%s+0x%x", name, off)
			}
			return ""
		}
		exportTo(*heatOut, func(f *os.File) error { return t.WriteHeat(f, symAt) })
	}
	if a := cov.Audit; a != nil && a.Configured() {
		exportTo(*auditOut, func(f *os.File) error { return a.WriteReport(f) })
		exportTo(*auditJSONOut, func(f *os.File) error { return a.WriteJSON(f) })
	}
}

// telemetrySetup builds the metrics sampler the command-line flags ask for
// (nil when telemetry is off). -timeseries without an explicit cadence
// samples at the 1 ms default.
func telemetrySetup() *telemetry.Sampler {
	if *sampleEvery <= 0 && *timeseriesOut == "" {
		return nil
	}
	return telemetry.NewSampler(telemetry.Options{
		Every: kernel.Time((*sampleEvery).Nanoseconds()),
	})
}

// writeTelemetryExports dumps the sampled timeseries of the traced run.
func writeTelemetryExports(smp *telemetry.Sampler) {
	if smp == nil {
		return
	}
	exportTo(*timeseriesOut, func(f *os.File) error {
		if strings.HasSuffix(*timeseriesOut, ".csv") {
			return smp.WriteCSV(f)
		}
		return smp.WriteJSONL(f)
	})
}

// exportTo writes one export, reporting errors without aborting the rest.
func exportTo(path string, fn func(*os.File) error) {
	if path == "" {
		return
	}
	f := os.Stderr
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
	}
	if err := fn(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// writeTraceExports dumps the requested views of the traced run.
func writeTraceExports(e *immo.ECU, o *obs.Observer, tr *trace.Trace) {
	if tr == nil && o == nil {
		return
	}
	if tr != nil && tr.VCD != nil {
		tr.VCD.Sample(uint64(e.Platform.Sim.Now()))
	}
	if tr != nil {
		exportTo(*vcdOut, func(f *os.File) error { return tr.VCD.Dump(f) })
		exportTo(*profileOut, func(f *os.File) error { return tr.Prof.WriteTop(f, 30) })
		exportTo(*foldedOut, func(f *os.File) error { return tr.Prof.WriteFolded(f) })
		exportTo(*ktOut, func(f *os.File) error { return tr.Kernel.WriteJSONL(f) })
	}
	exportTo(*chromeOut, func(f *os.File) error {
		var kt *trace.KernelTrace
		if tr != nil {
			kt = tr.Kernel
		}
		return trace.WriteChromeTrace(f, kt, o)
	})
}

// exportForensics writes the ECU platform's last forensic bundle (JSON +
// human report) under -forensics, named after the case-study step that
// produced the violation. No-op without the flag or without a bundle.
func exportForensics(name string, e *immo.ECU) {
	if *forensicsDir == "" {
		return
	}
	b := e.Platform.LastForensics()
	if b == nil {
		return
	}
	if err := os.MkdirAll(*forensicsDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	path := filepath.Join(*forensicsDir, name+".forensics.json")
	if err := os.WriteFile(path, b.JSON(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	exportTo(filepath.Join(*forensicsDir, name+".forensics.txt"), func(f *os.File) error {
		return b.WriteReport(f)
	})
	fmt.Printf("    forensics: %s\n", path)
}

func step(n int, what string) {
	fmt.Printf("\n[%d] %s\n", n, what)
}

func expectViolation(err error, kind core.ViolationKind) error {
	var v *core.Violation
	if !errors.As(err, &v) {
		return fmt.Errorf("expected a %v violation, got: %v", kind, err)
	}
	if v.Kind != kind {
		return fmt.Errorf("expected kind %v, got %v", kind, v)
	}
	fmt.Printf("    DETECTED: %v\n", v)
	return nil
}

func run() error {
	challenge := [8]byte{0xCA, 0xFE, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}

	step(1, "challenge/response authentication under the base policy")
	observer, tr := traceSetup()
	cov := coverSetup()
	smp := telemetrySetup()
	e, err := immo.NewECUSampled(immo.VariantFixed, immo.PolicyBase, observer, tr, cov, smp)
	if err != nil {
		return err
	}
	resp, err := e.Authenticate(challenge)
	if err != nil {
		return err
	}
	fmt.Printf("    challenge % x -> response % x\n", challenge, resp)
	if resp != immo.Expected(challenge) {
		return fmt.Errorf("response mismatch")
	}
	fmt.Println("    engine ECU verifies the response: OK (AES declassification at work)")
	if smp != nil {
		// A single authentication finishes within a couple of samples; let
		// the firmware idle for a stretch so the exported timeseries also
		// shows the quiet tail a dashboard would render.
		if err := e.Idle(10 * kernel.MS); err != nil {
			return err
		}
	}
	writeTraceExports(e, observer, tr)
	writeCoverExports(e, cov)
	writeTelemetryExports(smp)
	e.Close()

	step(2, "debug memory dump on the original firmware (the vulnerability)")
	e, err = immo.NewECU(immo.VariantVulnerable, immo.PolicyBase)
	if err != nil {
		return err
	}
	_, dumpErr := e.DebugDump()
	if err := expectViolation(dumpErr, core.KindOutputClearance); err != nil {
		return err
	}
	exportForensics("immo-debug-dump", e)
	e.Close()

	step(3, "debug memory dump on the fixed firmware")
	e, err = immo.NewECU(immo.VariantFixed, immo.PolicyBase)
	if err != nil {
		return err
	}
	dump, err := e.DebugDump()
	if err != nil {
		return err
	}
	if immo.ContainsPIN(dump) {
		return fmt.Errorf("fixed dump still contains the PIN")
	}
	fmt.Printf("    dump of %d bytes, PIN not present: OK\n", len(dump))
	e.Close()

	step(4, "attack scenarios against the base policy")
	for _, sc := range []struct {
		cmd     byte
		payload []byte
		what    string
		kind    core.ViolationKind
	}{
		{'a', nil, "write the PIN directly to an output interface", core.KindOutputClearance},
		{'b', nil, "leak the PIN through an intermediate buffer to the CAN bus", core.KindOutputClearance},
		{'f', nil, "leak the PIN through a buffer-overflow read of the serial string", core.KindOutputClearance},
		{'c', nil, "control flow depending on the PIN", core.KindBranchClearance},
		{'o', []byte{0x42}, "override the PIN with external data", core.KindStoreClearance},
	} {
		e, err = immo.NewECU(immo.VariantFixed, immo.PolicyBase)
		if err != nil {
			return err
		}
		fmt.Printf("    scenario: %s\n", sc.what)
		if err := expectViolation(e.Command(sc.cmd, sc.payload...), sc.kind); err != nil {
			return err
		}
		exportForensics("immo-scenario-"+string(sc.cmd), e)
		e.Close()
	}

	step(5, "the HI-overwrite entropy attack against the base policy")
	e, err = immo.NewECU(immo.VariantFixed, immo.PolicyBase)
	if err != nil {
		return err
	}
	if err := e.Command('e'); err != nil {
		return fmt.Errorf("entropy attack unexpectedly detected: %v", err)
	}
	fmt.Println("    NOT detected: PIN bytes 1..3 overwritten with byte 0 (HI -> HI is allowed)")
	resp, err = e.Authenticate(challenge)
	if err != nil {
		return err
	}
	b, ok := immo.BruteForcePIN0(challenge, resp)
	if !ok {
		return fmt.Errorf("brute force failed")
	}
	fmt.Printf("    key entropy collapsed to 8 bits; brute force recovers PIN[0] = 0x%02x\n", b)
	e.Close()

	step(6, "the same attack against the per-byte-class policy (the fix)")
	e, err = immo.NewECU(immo.VariantFixed, immo.PolicyPerByte)
	if err != nil {
		return err
	}
	if err := expectViolation(e.Command('e'), core.KindStoreClearance); err != nil {
		return err
	}
	exportForensics("immo-entropy-perbyte", e)
	e.Close()

	fmt.Println("\ncase study complete: all paper findings reproduced")
	return nil
}
