// Command vp-load is the pure-Go load harness for the session server: it
// drives thousands of concurrent sessions through the /api/v1 HTTP surface,
// measures submit-to-result latency and completed-sessions-per-second
// throughput, and emits a BENCH_serve.json report the CI serve-perf guard
// compares against the checked-in baseline.
//
// By default it self-hosts: an in-process vp-serve-equivalent (serve.Factory
// on a telemetry.Server) listens on a loopback port and the harness talks to
// it over real TCP, so the numbers include the full HTTP + scheduler path.
// -url points it at an external server instead.
//
// Modes:
//
//	vp-load -n 1000 -concurrency 64 -out BENCH_serve.json
//	    closed-loop load run: submit N sessions (unique stimuli, so nothing
//	    dedups), await every result, report throughput and percentiles.
//	vp-load -verify
//	    functional checks: dedup cache hit, queue-full 429 + Retry-After,
//	    drain leaves zero sessions and zero leaked goroutines.
//	vp-load -n 200 -baseline BENCH_serve.json -regress 0.25
//	    load run plus guard: fail if throughput drops more than -regress
//	    below the baseline report (the cmd/perf -baseline idiom).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vpdift/internal/cover"
	"vpdift/internal/flight"
	"vpdift/internal/serve"
	"vpdift/internal/telemetry"
)

var (
	urlFlag     = flag.String("url", "", "target server base URL (default: self-hosted in-process server)")
	nFlag       = flag.Int("n", 1000, "total sessions to run")
	concurrency = flag.Int("concurrency", 64, "concurrent HTTP submitters/pollers")
	workersFlag = flag.Int("workers", 0, "self-hosted server worker pool size (0 = GOMAXPROCS)")
	queueDepth  = flag.Int("queue-depth", telemetry.DefaultQueueDepth, "self-hosted server queue capacity")
	workload    = flag.String("workload", "micro", "workload each session runs")
	sampleUs    = flag.Int64("sample-us", 0, "per-session sampler cadence in simulated µs (0 = none)")
	outFlag     = flag.String("out", "", "write the JSON report here (default stdout)")
	verifyFlag  = flag.Bool("verify", false, "run functional checks instead of a load run")
	baseline    = flag.String("baseline", "", "compare against an archived report and fail on throughput regression")
	regress     = flag.Float64("regress", 0.25, "allowed fractional throughput drop vs -baseline before failing")
	serverMet   = flag.String("server-metrics", "", "after the run, scrape the target's /metrics, validate the exposition, and write it to this file")
	forDir      = flag.String("forensics-dir", "", "after the await phase, download the forensic bundle of every failed/violating session into this directory")
	coverDir    = flag.String("cover-dir", "", "run sessions with the coverage layer attached and archive each session's snapshot as <id>.cover.json in this directory")
)

// Report is the BENCH_serve.json shape.
type Report struct {
	Meta struct {
		GoVersion string `json:"go_version"`
		OS        string `json:"os"`
		Arch      string `json:"arch"`
		NumCPU    int    `json:"num_cpu"`
	} `json:"meta"`
	Sessions      int     `json:"sessions"`
	Concurrency   int     `json:"concurrency"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	Workload      string  `json:"workload"`
	PeakInFlight  int     `json:"peak_in_flight"`
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputSPS float64 `json:"throughput_sps"`
	SPSPerWorker  float64 `json:"sps_per_worker"`
	LatencyMs     struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Submitted        int `json:"submitted"`
	Completed        int `json:"completed"`
	CacheHits        int `json:"cache_hits"`
	Rejected429      int `json:"rejected_429"`
	Errors           int `json:"errors"`
	LeakedGoroutines int `json:"leaked_goroutines"`
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	if *verifyFlag {
		return verify()
	}
	return loadRun()
}

// target is a server under test: a base URL plus, when self-hosted, the
// in-process handle for drain and leak accounting.
type target struct {
	base  string
	sv    *telemetry.Server
	httpS *http.Server
	ln    net.Listener
}

// startSelf boots the in-process server on a loopback port.
func startSelf(workers, depth int) (*target, error) {
	opts := []telemetry.ServerOption{
		telemetry.WithFactory(serve.NewFactory()),
		telemetry.WithQueueDepth(depth),
	}
	if workers > 0 {
		opts = append(opts, telemetry.WithWorkers(workers))
	}
	sv := telemetry.NewServer(opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: sv.Handler()}
	go hs.Serve(ln)
	return &target{base: "http://" + ln.Addr().String(), sv: sv, httpS: hs, ln: ln}, nil
}

func (tg *target) close() {
	if tg.httpS != nil {
		tg.httpS.Close()
	}
	if tg.sv != nil {
		tg.sv.Close()
	}
}

func client() *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

type envelope struct {
	Data  json.RawMessage `json:"data"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func postJSON(c *http.Client, url string, body any) (int, http.Header, envelope, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, envelope{}, err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, envelope{}, err
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil && err != io.EOF {
		return resp.StatusCode, resp.Header, env, err
	}
	return resp.StatusCode, resp.Header, env, nil
}

func getJSON(c *http.Client, url string) (int, envelope, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, envelope{}, err
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil && err != io.EOF {
		return resp.StatusCode, env, err
	}
	return resp.StatusCode, env, nil
}

// loadRun is the closed-loop benchmark, in two phases so the server holds
// all N sessions concurrently at peak: C submitters first push every session
// in (unique stimuli defeat the dedup store on purpose), then C pollers
// await each result; completion latency is submit-to-result-available.
func loadRun() error {
	baselineGoroutines := runtime.NumGoroutine()
	tg, err := resolveTarget()
	if err != nil {
		return err
	}
	c := client()

	var (
		submitted, completed, cacheHits, rejected, errs atomic.Int64
		mu                                              sync.Mutex
		latencies                                       []time.Duration
		peak                                            int64
	)
	inFlight := new(atomic.Int64)
	bump := func(n int64) {
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				return
			}
		}
	}

	type pending struct {
		id string
		t0 time.Time
	}
	start := time.Now()

	// Phase 1: submit everything.
	idx := make(chan int, *nFlag)
	for i := 0; i < *nFlag; i++ {
		idx <- i
	}
	close(idx)
	queue := make(chan pending, *nFlag)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				id, ok := submitOne(c, tg.base, i, &submitted, &cacheHits, &rejected, &errs)
				if !ok {
					continue
				}
				bump(inFlight.Add(1))
				queue <- pending{id, t0}
			}
		}()
	}
	wg.Wait()
	close(queue)

	// Phase 2: await every result, noting which sessions kept forensics and
	// archiving coverage snapshots when -cover-dir asked for them.
	var failed []string
	var covered []coverEntry
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range queue {
				if data, ok := awaitResultData(c, tg.base, p.id, &errs); ok {
					completed.Add(1)
					var res struct {
						Forensics bool            `json:"forensics"`
						Cover     json.RawMessage `json:"cover"`
					}
					json.Unmarshal(data, &res)
					mu.Lock()
					latencies = append(latencies, time.Since(p.t0))
					if res.Forensics {
						failed = append(failed, p.id)
					}
					if *coverDir != "" && len(res.Cover) > 0 {
						covered = append(covered, coverEntry{p.id, res.Cover})
					}
					mu.Unlock()
				}
				inFlight.Add(-1)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	if *coverDir != "" {
		if err := archiveCover(covered); err != nil {
			return err
		}
	}

	// Pull forensic bundles before drain/close releases anything.
	if *forDir != "" {
		if err := downloadForensics(c, tg.base, failed); err != nil {
			return err
		}
	}

	// Scrape server-side metrics while the run's series are still hot —
	// before drain flips the readiness gauges.
	if *serverMet != "" {
		if err := captureServerMetrics(c, tg.base, *serverMet); err != nil {
			return err
		}
	}

	leaked := 0
	if tg.sv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := tg.sv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		}
		cancel()
		st := tg.sv.Stats()
		if st.Queued != 0 || st.Running != 0 {
			return fmt.Errorf("vp-load: drain left %d queued, %d running", st.Queued, st.Running)
		}
		tg.close()
		leaked = settleGoroutines(baselineGoroutines)
	}

	rep := buildReport(tg, latencies, wall)
	rep.PeakInFlight = int(peak)
	rep.Submitted = int(submitted.Load())
	rep.Completed = int(completed.Load())
	rep.CacheHits = int(cacheHits.Load())
	rep.Rejected429 = int(rejected.Load())
	rep.Errors = int(errs.Load())
	rep.LeakedGoroutines = leaked

	if rep.Completed != *nFlag {
		defer os.Exit(1)
		fmt.Fprintf(os.Stderr, "vp-load: %d/%d sessions completed\n", rep.Completed, *nFlag)
	}
	if leaked > 0 {
		defer os.Exit(1)
		fmt.Fprintf(os.Stderr, "vp-load: %d goroutines leaked after drain\n", leaked)
	}

	if err := emit(rep); err != nil {
		return err
	}
	if *baseline != "" {
		return guard(rep)
	}
	return nil
}

// captureServerMetrics scrapes /metrics, validates the exposition (format
// and histogram contract), checks the run actually left server-side traces
// (request counters, queue-wait observations), and archives the text — the
// load report's server-side half.
func captureServerMetrics(c *http.Client, base, path string) error {
	resp, err := c.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("vp-load: scrape /metrics: %w", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("vp-load: read /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("vp-load: /metrics status %d", resp.StatusCode)
	}
	text := string(b)
	if err := telemetry.ValidateExposition(text); err != nil {
		return fmt.Errorf("vp-load: /metrics failed validation: %w", err)
	}
	for _, want := range []string{
		"vpdift_http_requests_total",
		"vpdift_http_request_duration_seconds_bucket",
		"vpdift_serve_queue_wait_seconds_count",
	} {
		if !bytes.Contains(b, []byte(want)) {
			return fmt.Errorf("vp-load: /metrics is missing %s after a load run", want)
		}
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "server metrics validated (%d bytes) -> %s\n", len(b), path)
	return nil
}

func resolveTarget() (*target, error) {
	if *urlFlag != "" {
		return &target{base: *urlFlag}, nil
	}
	return startSelf(*workersFlag, *queueDepth)
}

// submitOne POSTs one session, retrying briefly on 429. Unique stimuli keep
// every submission a cache miss. Returns the session ID.
func submitOne(c *http.Client, base string, i int, submitted, cacheHits, rejected, errs *atomic.Int64) (string, bool) {
	spec := telemetry.SessionSpec{
		Workload: *workload,
		Stimulus: fmt.Sprintf("load-%d", i),
		SampleUs: *sampleUs,
		Cover:    *coverDir != "",
	}
	backoff := 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		status, _, env, err := postJSON(c, base+"/api/v1/sessions", spec)
		if err != nil {
			errs.Add(1)
			return "", false
		}
		switch status {
		case http.StatusCreated:
			submitted.Add(1)
			var created struct {
				Session struct {
					ID string `json:"id"`
				} `json:"session"`
			}
			json.Unmarshal(env.Data, &created)
			return created.Session.ID, true
		case http.StatusOK:
			// Cached or coalesced — should not happen with unique stimuli,
			// but count it rather than hang waiting for a session.
			cacheHits.Add(1)
			return "", false
		case http.StatusTooManyRequests:
			// The header is second-granular; a load harness backs off in
			// milliseconds or the measurement drowns in politeness.
			rejected.Add(1)
			if attempt > 5000 {
				errs.Add(1)
				return "", false
			}
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		default:
			errs.Add(1)
			return "", false
		}
	}
}

// awaitResult polls the result endpoint (409 until the session finishes).
func awaitResult(c *http.Client, base, id string, errs *atomic.Int64) bool {
	_, ok := awaitResultData(c, base, id, errs)
	return ok
}

// awaitResultData is awaitResult returning the result's "data" payload.
func awaitResultData(c *http.Client, base, id string, errs *atomic.Int64) (json.RawMessage, bool) {
	backoff := time.Millisecond
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		status, env, err := getJSON(c, base+"/api/v1/sessions/"+id+"/result")
		if err != nil {
			errs.Add(1)
			return nil, false
		}
		switch status {
		case http.StatusOK:
			return env.Data, true
		case http.StatusConflict:
			time.Sleep(backoff)
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
		default:
			errs.Add(1)
			return nil, false
		}
	}
	errs.Add(1)
	return nil, false
}

// coverEntry is one completed session's coverage snapshot as served in its
// result payload.
type coverEntry struct {
	id  string
	raw json.RawMessage
}

// archiveCover validates and writes each covered session's snapshot as
// <id>.cover.json under -cover-dir, in canonical bytes. Every snapshot is
// round-tripped through the parser and held to merge idempotence
// (merge(S,S) == S) — a snapshot that double-counts under self-merge would
// poison every downstream campaign rollup.
func archiveCover(entries []coverEntry) error {
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "cover: no session carried a snapshot, nothing to archive")
		return nil
	}
	if err := os.MkdirAll(*coverDir, 0o755); err != nil {
		return err
	}
	for _, e := range entries {
		snap, err := cover.ParseSnapshot(e.raw)
		if err != nil {
			return fmt.Errorf("vp-load: cover %s: %w", e.id, err)
		}
		self, err := cover.Merge(snap, snap)
		if err != nil {
			return fmt.Errorf("vp-load: cover %s: self-merge: %w", e.id, err)
		}
		if !bytes.Equal(self.JSON(), snap.JSON()) {
			return fmt.Errorf("vp-load: cover %s: merge(S,S) != S", e.id)
		}
		if err := os.WriteFile(filepath.Join(*coverDir, e.id+".cover.json"), snap.JSON(), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "cover: %d validated snapshots -> %s\n", len(entries), *coverDir)
	return nil
}

// downloadForensics fetches each failed session's bundle, validates it, and
// writes it as <id>.forensics.json under -forensics-dir.
func downloadForensics(c *http.Client, base string, ids []string) error {
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "forensics: no failed sessions, nothing to download")
		return nil
	}
	if err := os.MkdirAll(*forDir, 0o755); err != nil {
		return err
	}
	for _, id := range ids {
		resp, err := c.Get(base + "/api/v1/sessions/" + id + "/forensics")
		if err != nil {
			return fmt.Errorf("vp-load: forensics %s: %w", id, err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("vp-load: forensics %s: %w", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("vp-load: forensics %s: status %d", id, resp.StatusCode)
		}
		if _, err := flight.ValidateBundle(b); err != nil {
			return fmt.Errorf("vp-load: forensics %s: %w", id, err)
		}
		if err := os.WriteFile(filepath.Join(*forDir, id+".forensics.json"), b, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "forensics: %d validated bundles -> %s\n", len(ids), *forDir)
	return nil
}

// settleGoroutines waits briefly for worker goroutines to unwind and returns
// how many remain above the pre-server baseline.
func settleGoroutines(baseline int) int {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return 0
		}
		time.Sleep(10 * time.Millisecond)
	}
	return runtime.NumGoroutine() - baseline
}

func buildReport(tg *target, latencies []time.Duration, wall time.Duration) *Report {
	rep := &Report{
		Sessions:    *nFlag,
		Concurrency: *concurrency,
		QueueDepth:  *queueDepth,
		Workload:    *workload,
		WallSeconds: wall.Seconds(),
	}
	rep.Meta.GoVersion = runtime.Version()
	rep.Meta.OS = runtime.GOOS
	rep.Meta.Arch = runtime.GOARCH
	rep.Meta.NumCPU = runtime.NumCPU()
	rep.Workers = *workersFlag
	if rep.Workers == 0 {
		rep.Workers = runtime.GOMAXPROCS(0)
	}
	if wall > 0 {
		rep.ThroughputSPS = float64(len(latencies)) / wall.Seconds()
		rep.SPSPerWorker = rep.ThroughputSPS / float64(rep.Workers)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(latencies)-1))
			return float64(latencies[i]) / float64(time.Millisecond)
		}
		rep.LatencyMs.P50 = pct(0.50)
		rep.LatencyMs.P90 = pct(0.90)
		rep.LatencyMs.P99 = pct(0.99)
		rep.LatencyMs.Max = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
	}
	return rep
}

func emit(rep *Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *outFlag == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	fmt.Fprintf(os.Stderr, "throughput %.1f sessions/s (p50 %.1fms p99 %.1fms), report -> %s\n",
		rep.ThroughputSPS, rep.LatencyMs.P50, rep.LatencyMs.P99, *outFlag)
	return os.WriteFile(*outFlag, b, 0o644)
}

// guard fails the run when throughput regressed more than -regress below the
// baseline report — the serve flavour of cmd/perf's CI guard.
func guard(rep *Report) error {
	b, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("vp-load: baseline %s: %w", *baseline, err)
	}
	if base.SPSPerWorker <= 0 {
		return fmt.Errorf("vp-load: baseline %s has no throughput", *baseline)
	}
	// Per-worker throughput absorbs core-count differences between the
	// machine that archived the baseline and the one checking it.
	got, want := rep.SPSPerWorker, base.SPSPerWorker
	if got < want*(1-*regress) {
		return fmt.Errorf("vp-load: %.1f sessions/s/worker is %.1f%% below baseline %.1f (tolerance %.0f%%)",
			got, (1-got/want)*100, want, *regress*100)
	}
	fmt.Fprintf(os.Stderr, "serve perf guard ok: %.1f sessions/s/worker vs baseline %.1f (tolerance %.0f%%)\n",
		got, want, *regress*100)
	return nil
}

// verify runs the functional checks: dedup, backpressure, drain.
func verify() error {
	if err := verifyDedup(); err != nil {
		return fmt.Errorf("vp-load verify (dedup): %w", err)
	}
	if err := verifyBackpressure(); err != nil {
		return fmt.Errorf("vp-load verify (backpressure): %w", err)
	}
	if err := verifyDrain(); err != nil {
		return fmt.Errorf("vp-load verify (drain): %w", err)
	}
	if err := verifyForensics(); err != nil {
		return fmt.Errorf("vp-load verify (forensics): %w", err)
	}
	if err := verifyCover(); err != nil {
		return fmt.Errorf("vp-load verify (cover): %w", err)
	}
	fmt.Fprintln(os.Stderr, "vp-load verify: dedup, backpressure, drain, forensics and cover checks passed")
	return nil
}

// verifyCover runs one covered session end to end and holds its snapshot to
// the cross-run algebra: it parses canonically, merge(S,S) == S, and the
// self-diff is empty.
func verifyCover() error {
	tg, err := startSelf(2, 64)
	if err != nil {
		return err
	}
	defer tg.close()
	c := client()

	status, _, env, err := postJSON(c, tg.base+"/api/v1/sessions",
		telemetry.SessionSpec{Workload: "wk-3", Stimulus: "verify-cover", Cover: true})
	if err != nil || status != http.StatusCreated {
		return fmt.Errorf("POST covered wk-3: status %d, err %v", status, err)
	}
	var created struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
	}
	json.Unmarshal(env.Data, &created)
	var e atomic.Int64
	data, ok := awaitResultData(c, tg.base, created.Session.ID, &e)
	if !ok {
		return fmt.Errorf("covered wk-3 session never finished")
	}
	var res struct {
		Cover json.RawMessage `json:"cover"`
	}
	json.Unmarshal(data, &res)
	if len(res.Cover) == 0 {
		return fmt.Errorf("covered session's result carries no snapshot: %s", data)
	}
	snap, err := cover.ParseSnapshot(res.Cover)
	if err != nil {
		return err
	}
	if snap.EdgeCount() == 0 {
		return fmt.Errorf("covered wk-3 snapshot has no edges")
	}
	self, err := cover.Merge(snap, snap)
	if err != nil {
		return fmt.Errorf("self-merge: %w", err)
	}
	if !bytes.Equal(self.JSON(), snap.JSON()) {
		return fmt.Errorf("merge(S,S) != S")
	}
	if d := cover.Diff(snap, snap); !d.Empty() {
		return fmt.Errorf("self-diff not empty: %s", d.JSON())
	}
	return nil
}

// verifyForensics runs a known-violating Wilander–Kamkar attack session and
// requires the forensics endpoint to serve a bundle that parses and
// validates, with the trace window ending at the violation.
func verifyForensics() error {
	tg, err := startSelf(2, 64)
	if err != nil {
		return err
	}
	defer tg.close()
	c := client()

	status, _, env, err := postJSON(c, tg.base+"/api/v1/sessions",
		telemetry.SessionSpec{Workload: "wk-3", Stimulus: "verify-forensics"})
	if err != nil || status != http.StatusCreated {
		return fmt.Errorf("POST wk-3: status %d, err %v", status, err)
	}
	var created struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
	}
	json.Unmarshal(env.Data, &created)
	var e atomic.Int64
	data, ok := awaitResultData(c, tg.base, created.Session.ID, &e)
	if !ok {
		return fmt.Errorf("wk-3 session never finished")
	}
	var res struct {
		Detected  bool `json:"detected"`
		Forensics bool `json:"forensics"`
	}
	json.Unmarshal(data, &res)
	if !res.Detected {
		return fmt.Errorf("wk-3 not detected: %s", data)
	}
	if !res.Forensics {
		return fmt.Errorf("wk-3 result reports no forensic bundle: %s", data)
	}
	resp, err := c.Get(tg.base + "/api/v1/sessions/" + created.Session.ID + "/forensics")
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("forensics endpoint: status %d: %s", resp.StatusCode, raw)
	}
	b, err := flight.ValidateBundle(raw)
	if err != nil {
		return err
	}
	if b.Reason != "violation" || len(b.Trace) == 0 || b.Trace[len(b.Trace)-1].Kind != "violation" {
		return fmt.Errorf("bundle reason %q; trace window does not end at the violation", b.Reason)
	}
	return nil
}

// verifyDedup submits the same spec twice and requires the second submission
// to be served from the result store without re-simulating.
func verifyDedup() error {
	tg, err := startSelf(2, 64)
	if err != nil {
		return err
	}
	defer tg.close()
	c := client()
	spec := telemetry.SessionSpec{Workload: "micro", Stimulus: "verify-dedup"}

	status, _, env, err := postJSON(c, tg.base+"/api/v1/sessions", spec)
	if err != nil || status != http.StatusCreated {
		return fmt.Errorf("first POST: status %d, err %v", status, err)
	}
	var created struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
	}
	json.Unmarshal(env.Data, &created)
	var e atomic.Int64
	if !awaitResult(c, tg.base, created.Session.ID, &e) {
		return fmt.Errorf("first session never finished")
	}
	status, _, env, err = postJSON(c, tg.base+"/api/v1/sessions", spec)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("second POST: status %d, err %v (want 200 cached)", status, err)
	}
	var hit struct {
		Cached bool `json:"cached"`
	}
	json.Unmarshal(env.Data, &hit)
	if !hit.Cached {
		return fmt.Errorf("second POST not served from store: %s", env.Data)
	}
	if st := tg.sv.Stats(); st.CacheHits != 1 || st.Submitted != 1 {
		return fmt.Errorf("stats = %+v, want 1 submitted, 1 cache hit", st)
	}
	return nil
}

// verifyBackpressure fills a 1-worker, depth-1 server with endless
// immobilizer sessions and requires the overflow submission to be a 429
// carrying Retry-After.
func verifyBackpressure() error {
	tg, err := startSelf(1, 1)
	if err != nil {
		return err
	}
	defer tg.close()
	c := client()
	post := func(i int) (int, http.Header, error) {
		status, hdr, _, err := postJSON(c, tg.base+"/api/v1/sessions",
			telemetry.SessionSpec{Workload: "immo", Stimulus: fmt.Sprintf("bp-%d", i)})
		return status, hdr, err
	}
	// #1 occupies the worker (endless), #2 takes the single queue slot.
	for i := 0; i < 2; i++ {
		if status, _, err := post(i); err != nil || status != http.StatusCreated {
			return fmt.Errorf("POST %d: status %d, err %v", i, status, err)
		}
		if i == 0 {
			if err := waitRunning(tg.sv, 1); err != nil {
				return err
			}
		}
	}
	status, hdr, err := post(2)
	if err != nil {
		return err
	}
	if status != http.StatusTooManyRequests {
		return fmt.Errorf("overflow POST: status %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		return fmt.Errorf("429 without Retry-After header")
	}
	return nil
}

func waitRunning(sv *telemetry.Server, n int) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sv.Stats().Running >= n {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("server never reached %d running sessions", n)
}

// verifyDrain runs a batch to completion, drains, and requires zero queued,
// zero running and no leaked goroutines.
func verifyDrain() error {
	before := runtime.NumGoroutine()
	tg, err := startSelf(4, 64)
	if err != nil {
		return err
	}
	c := client()
	var e atomic.Int64
	ids := make([]string, 0, 20)
	for i := 0; i < 20; i++ {
		status, _, env, err := postJSON(c, tg.base+"/api/v1/sessions",
			telemetry.SessionSpec{Workload: "micro", Stimulus: fmt.Sprintf("drain-%d", i)})
		if err != nil || status != http.StatusCreated {
			return fmt.Errorf("POST %d: status %d, err %v", i, status, err)
		}
		var created struct {
			Session struct {
				ID string `json:"id"`
			} `json:"session"`
		}
		json.Unmarshal(env.Data, &created)
		ids = append(ids, created.Session.ID)
	}
	for _, id := range ids {
		if !awaitResult(c, tg.base, id, &e) {
			return fmt.Errorf("session %s never finished", id)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tg.sv.Drain(ctx); err != nil {
		return err
	}
	st := tg.sv.Stats()
	if st.Queued != 0 || st.Running != 0 || st.Completed != 20 {
		return fmt.Errorf("after drain: %+v", st)
	}
	tg.close()
	if leaked := settleGoroutines(before); leaked > 0 {
		return fmt.Errorf("%d goroutines leaked", leaked)
	}
	return nil
}
