// Package vpdift is a virtual-prototype-based dynamic information flow
// tracking (DIFT) engine for embedded RISC-V binaries — a from-scratch Go
// reproduction of "Dynamic Information Flow Tracking for Embedded Binaries
// using SystemC-based Virtual Prototypes" (DAC 2020).
//
// The package is a thin facade over the implementation packages:
//
//   - a deterministic discrete-event simulation kernel (the SystemC
//     substitute) and a TLM-style bus whose payloads carry tainted bytes;
//   - an RV32IM instruction-set simulator in two flavours: the plain
//     baseline core ("VP") and the tag-propagating DIFT core ("VP+") with
//     the paper's execution-clearance checks;
//   - a peripheral set (UART, sensor, CLINT, interrupt controller, DMA,
//     CAN, AES with declassification, SysCtrl);
//   - an RV32IM assembler so guest binaries can be built in-process;
//   - security policies: IFP lattices, classification, clearance,
//     declassification.
//
// # Quick start
//
//	img, err := vpdift.BuildProgram(`
//	main:
//	    la a0, msg
//	    tail uart_puts
//	    .data
//	msg: .asciz "hello\n"
//	`)
//	...
//	lat := vpdift.IFP1()
//	pol := vpdift.NewPolicy(lat, lat.MustTag(vpdift.ClassLC)).
//	    WithOutput("uart0.tx", lat.MustTag(vpdift.ClassLC))
//	pl, err := vpdift.NewPlatform(vpdift.WithPolicy(pol))
//	...
//	err = pl.Load(img)
//	res, err := pl.Run(vpdift.Forever) // res.Violation on policy violations
//
// Attach an Observer (vpdift.WithObserver(vpdift.NewObserver())) to record
// taint-propagation provenance: a violation then carries the ordered event
// chain from the classification site to the failed clearance check.
package vpdift

import (
	"errors"
	"fmt"
	"io"
	"log/slog"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/flight"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/periph"
	"vpdift/internal/rv32"
	"vpdift/internal/soc"
	"vpdift/internal/telemetry"
	"vpdift/internal/tlm"
	"vpdift/internal/trace"
)

// Security-policy types.
type (
	// Tag identifies a security class within a Lattice.
	Tag = core.Tag
	// Lattice is an information flow policy: a join-semilattice of
	// security classes with LUB and AllowedFlow.
	Lattice = core.Lattice
	// Policy bundles an IFP with classification and clearance assignments.
	Policy = core.Policy
	// RegionRule attaches classification/store-clearance to address ranges.
	RegionRule = core.RegionRule
	// ExecClearance configures the CPU's execution-clearance checks.
	ExecClearance = core.ExecClearance
	// Violation is the runtime error raised on policy violations.
	Violation = core.Violation
	// ViolationKind classifies where a violation was detected.
	ViolationKind = core.ViolationKind
	// Word is a tainted 32-bit value.
	Word = core.Word
	// TByte is a tainted byte.
	TByte = core.TByte
)

// Violation kinds.
const (
	KindOutputClearance  = core.KindOutputClearance
	KindFetchClearance   = core.KindFetchClearance
	KindBranchClearance  = core.KindBranchClearance
	KindMemAddrClearance = core.KindMemAddrClearance
	KindStoreClearance   = core.KindStoreClearance
)

// Standard security-class names used by the IFP constructors.
const (
	ClassLC = core.ClassLC
	ClassHC = core.ClassHC
	ClassHI = core.ClassHI
	ClassLI = core.ClassLI
)

// NewLattice builds an IFP from classes and allowed-flow edges.
func NewLattice(classes []string, edges [][2]string) (*Lattice, error) {
	return core.NewLattice(classes, edges)
}

// IFP1 is the confidentiality lattice of the paper's Fig. 1 (LC -> HC).
func IFP1() *Lattice { return core.IFP1() }

// IFP2 is the integrity lattice of Fig. 1 (HI -> LI).
func IFP2() *Lattice { return core.IFP2() }

// IFP3 is the combined confidentiality+integrity product lattice of Fig. 1.
func IFP3() *Lattice { return core.IFP3() }

// Product combines two IFPs into their product lattice.
func Product(a, b *Lattice) (*Lattice, error) { return core.Product(a, b) }

// PerByteKeyIntegrity builds the per-key-byte integrity lattice used by the
// immobilizer case study's final fix.
func PerByteKeyIntegrity(keyBytes int) (*Lattice, error) {
	return core.PerByteKeyIntegrity(keyBytes)
}

// NewPolicy creates an empty policy over a lattice with a default class.
func NewPolicy(l *Lattice, defaultClass Tag) *Policy { return core.NewPolicy(l, defaultClass) }

// Simulation time.
type Time = kernel.Time

// Time units and the unbounded horizon.
const (
	NS      = kernel.NS
	US      = kernel.US
	MS      = kernel.MS
	S       = kernel.S
	Forever = kernel.Forever
)

// Toolchain types.
type (
	// Image is an assembled guest program.
	Image = asm.Image
	// AsmOptions configures assembly.
	AsmOptions = asm.Options
)

// Assemble translates raw RV32IM assembly into a loadable image.
func Assemble(src string, opts AsmOptions) (*Image, error) { return asm.Assemble(src, opts) }

// BuildProgram assembles a guest program body against the bundled runtime
// (crt0, UART console I/O, setjmp/longjmp, rand, the platform's MMIO
// equates). The body must define main.
func BuildProgram(body string) (*Image, error) { return guest.Program(body) }

// Platform types.
type (
	// UART is the console peripheral.
	UART = periph.UART
	// Sensor is the paper's Fig. 4 sensor peripheral.
	Sensor = periph.Sensor
	// CAN is the CAN-bus endpoint.
	CAN = periph.CAN
	// CANFrame is a CAN frame with tainted payload bytes.
	CANFrame = periph.CANFrame
	// AES is the declassifying crypto engine.
	AES = periph.AES
	// DMA is the tag-preserving copy engine.
	DMA = periph.DMA
	// Bus is the TLM interconnect.
	Bus = tlm.Bus
	// Core is the baseline RV32IM ISS.
	Core = rv32.Core
	// TaintCore is the DIFT-enabled RV32IM ISS.
	TaintCore = rv32.TaintCore
)

// Platform memory map.
const (
	RAMBase     = soc.RAMBase
	UARTBase    = soc.UARTBase
	SensorBase  = soc.SensorBase
	CANBase     = soc.CANBase
	AESBase     = soc.AESBase
	DMABase     = soc.DMABase
	CLINTBase   = soc.CLINTBase
	IntCBase    = soc.IntCBase
	SysCtrlBase = soc.SysCtrlBase
)

// Observability types.
type (
	// Observer records tag-propagation provenance, peripheral I/O, bus
	// transactions, and simulation metrics. Construct with NewObserver and
	// attach via WithObserver; a nil observer costs nothing.
	Observer = obs.Observer
	// ObserverOptions tunes ring capacity, chain depth, and exec tracing.
	ObserverOptions = obs.Options
	// TaintEvent is one recorded provenance event.
	TaintEvent = core.TaintEvent
	// TaintEventKind discriminates provenance events.
	TaintEventKind = core.TaintEventKind
)

// NewObserver creates an observability recorder with default options.
func NewObserver() *Observer { return obs.New() }

// NewObserverWithOptions creates a recorder with explicit options.
func NewObserverWithOptions(o ObserverOptions) *Observer { return obs.NewWithOptions(o) }

// Simulation-side tracing types (package internal/trace). Where the Observer
// answers "where did tainted data flow?", these answer "what did the
// simulator do, and where did the guest spend its time?".
type (
	// Trace bundles the enabled simulation-side views; leave fields nil to
	// disable them. Attach via WithTrace.
	Trace = trace.Trace
	// KernelTrace records scheduler and TLM bus events.
	KernelTrace = trace.KernelTrace
	// VCD collects waveform probes into a GTKWave-compatible value change
	// dump.
	VCD = trace.VCD
	// Profiler is the guest hot-path profiler fed by the cores' retire hook.
	Profiler = trace.Profiler
)

// Coverage-observability types (package internal/cover). Where the Observer
// follows individual tainted values and the Trace watches the simulator,
// these answer "what did this run actually exercise?".
type (
	// Cover bundles the enabled coverage views; leave fields nil to disable
	// them. Attach via WithCoverage.
	Cover = cover.Cover
	// GuestCov records guest basic-block and edge coverage.
	GuestCov = cover.GuestCov
	// TaintCov records taint heatmaps and register occupancy.
	TaintCov = cover.TaintCov
	// PolicyAudit records per-rule policy enforcement counts and dead rules.
	PolicyAudit = cover.PolicyAudit
)

// NewCoverage creates a coverage bundle with all three views enabled (on
// the baseline VP only the guest view records). The platform sizes the
// views at construction time.
func NewCoverage() *Cover { return cover.New() }

// Flight-recorder types (package internal/flight). The recorder is the
// always-on black box: a fixed-size overwrite-oldest ring of compressed
// per-retire records that costs the same whether or not anything ever goes
// wrong. When something does — a policy violation, a guest fault, or an
// explicit Snapshot — the window freezes into a ForensicBundle: one
// self-contained JSON document with the disassembled last-N trace, the full
// register and tag file, the violation's provenance chain, and memory/taint
// hexdumps around every address the window touched.
type (
	// FlightRecorder is the always-on last-N capture ring.
	FlightRecorder = flight.Recorder
	// ForensicBundle is a frozen post-mortem: trace window, registers,
	// tags, memory windows, policy identity and build metadata.
	ForensicBundle = flight.Bundle
	// FlightRec is one compressed flight-recorder entry.
	FlightRec = flight.Rec
)

// NewFlightRecorder creates a flight recorder with an n-entry ring (rounded
// up to a power of two; n <= 0 means the 4096-entry default). Platforms
// attach one by default — construct explicitly only to pick a different
// window size via WithFlightRecorder.
func NewFlightRecorder(n int) *FlightRecorder { return flight.New(n) }

// ValidateForensicBundle parses raw JSON as a v1 forensic bundle and checks
// its structural invariants (schema identity, register-file completeness,
// trace-record consistency).
func ValidateForensicBundle(raw []byte) (*ForensicBundle, error) {
	return flight.ValidateBundle(raw)
}

// Live-telemetry types (package internal/telemetry). Where the other
// observability layers record what happened, these watch it happen: a
// sampler snapshots the platform's metrics on a simulated-time cadence, and
// a Server runs sessions on a bounded worker pool and exposes them over the
// versioned /api/v1 HTTP surface (session lifecycle, policy x workload
// campaigns, Prometheus /metrics, JSONL timeseries, an SSE event tail).
type (
	// Sampler captures periodic metric snapshots into a bounded ring.
	// Attach via WithTelemetry; exporters: WriteJSONL, WriteCSV.
	Sampler = telemetry.Sampler
	// SamplerOptions tunes the sampling cadence and ring capacity.
	SamplerOptions = telemetry.Options
	// TelemetryServer serves one or more simulation sessions over HTTP.
	TelemetryServer = telemetry.Server
	// TelemetrySession describes one served simulation.
	TelemetrySession = telemetry.SessionConfig
	// TelemetryServerOption configures NewTelemetryServer, mirroring the
	// NewPlatform option idiom.
	TelemetryServerOption = telemetry.ServerOption
	// SessionSpec is the wire form of a session submission (workload,
	// policy, stimulus, horizon, priority, sampling).
	SessionSpec = telemetry.SessionSpec
	// SessionResult is a finished session's stored outcome.
	SessionResult = telemetry.SessionResult
	// ResultStore persists session results keyed by content hash.
	ResultStore = telemetry.ResultStore
)

// NewSampler creates a metrics sampler; zero-value options mean a 1 ms
// cadence and a 4096-sample ring.
func NewSampler(o SamplerOptions) *Sampler { return telemetry.NewSampler(o) }

// NewTelemetryServer creates a session server; submit sessions over the v1
// API (or Submit) and mount Handler on an http.Server. Options follow the
// NewPlatform idiom:
//
//	sv := vpdift.NewTelemetryServer(
//	    vpdift.WithServeWorkers(4),
//	    vpdift.WithServeQueueDepth(1024),
//	    vpdift.WithServeResultStore(store),
//	)
func NewTelemetryServer(opts ...TelemetryServerOption) *TelemetryServer {
	return telemetry.NewServer(opts...)
}

// WithServeWorkers sets the worker-pool size (default GOMAXPROCS).
func WithServeWorkers(n int) TelemetryServerOption { return telemetry.WithWorkers(n) }

// WithServeQueueDepth caps the pending-session queue; a full queue answers
// 429 with Retry-After.
func WithServeQueueDepth(n int) TelemetryServerOption { return telemetry.WithQueueDepth(n) }

// WithServeResultStore attaches a result store so repeated (image, policy,
// stimulus) submissions become cache hits.
func WithServeResultStore(st ResultStore) TelemetryServerOption {
	return telemetry.WithResultStore(st)
}

// WithServeLogger installs a structured logger on the server: request logs
// with per-request IDs, session/campaign lifecycle transitions, and drain
// progress. Without one the server logs nothing, at zero formatting cost.
func WithServeLogger(l *slog.Logger) TelemetryServerOption {
	return telemetry.WithLogger(l)
}

// NewMemResultStore creates an in-memory result store.
func NewMemResultStore() ResultStore { return telemetry.NewMemStore() }

// NewFileResultStore creates a result store persisting one JSON file per
// result under dir, surviving server restarts.
func NewFileResultStore(dir string) (ResultStore, error) { return telemetry.NewFileStore(dir) }

// WritePrometheus renders a metric snapshot (Result.Metrics, or
// Platform.MetricsSnapshot) in the Prometheus text exposition format.
func WritePrometheus(w io.Writer, metrics map[string]uint64) error {
	return telemetry.WritePrometheus(w, metrics)
}

// NewKernelTrace creates a kernel/bus event recorder keeping at most limit
// events (<= 0 means the default ring size).
func NewKernelTrace(limit int) *KernelTrace { return trace.NewKernelTrace(limit) }

// NewVCD creates an empty waveform collector.
func NewVCD() *VCD { return trace.NewVCD() }

// NewProfiler creates a guest profiler covering the default RAM window.
func NewProfiler() *Profiler { return trace.NewProfiler(RAMBase, soc.DefaultRAMSize) }

// WriteChromeTrace writes one Chrome trace_event JSON array combining
// kernel/bus records with the observer's taint events — scheduler activity,
// bus transactions and information flow on a single timeline. Either source
// may be nil.
func WriteChromeTrace(w io.Writer, kt *KernelTrace, o *Observer) error {
	return trace.WriteChromeTrace(w, kt, o)
}

// Platform is a constructed virtual prototype (VP or VP+). It embeds the SoC
// platform — peripherals, memory, and introspection helpers are promoted —
// and redefines Run to return a structured *Result.
type Platform struct {
	*soc.Platform
}

// Option configures NewPlatform. Options are applied in order; later options
// override earlier ones. The deprecated Config struct also satisfies Option.
type Option interface {
	applyOption(*soc.Config)
}

type optionFunc func(*soc.Config)

func (f optionFunc) applyOption(c *soc.Config) { f(c) }

// WithPolicy enables DIFT (the VP+ flavour) under the given policy. Without
// it the platform is the untracked baseline VP.
func WithPolicy(p *Policy) Option {
	return optionFunc(func(c *soc.Config) { c.Policy = p })
}

// WithObserver attaches an observability recorder to every layer of the
// platform: core hooks, peripheral I/O, bus monitors, and load-time
// classification roots.
func WithObserver(o *Observer) Option {
	return optionFunc(func(c *soc.Config) { c.Obs = o })
}

// WithTrace attaches the simulation-side observability layer: kernel/bus
// event recording, waveform probes, and the guest profiler, per the views
// enabled in t. A typical full setup:
//
//	tr := &vpdift.Trace{
//	    Kernel: vpdift.NewKernelTrace(0),
//	    VCD:    vpdift.NewVCD(),
//	    Prof:   vpdift.NewProfiler(),
//	}
//	pl, err := vpdift.NewPlatform(vpdift.WithPolicy(pol), vpdift.WithTrace(tr))
func WithTrace(t *Trace) Option {
	return optionFunc(func(c *soc.Config) { c.Trace = t })
}

// WithCoverage attaches the coverage-observability layer: guest block/edge
// coverage, taint heatmaps, and the policy audit, per the views enabled in
// cv (NewCoverage enables all three). A typical setup:
//
//	cov := vpdift.NewCoverage()
//	pl, err := vpdift.NewPlatform(vpdift.WithPolicy(pol), vpdift.WithCoverage(cov))
//	...
//	cov.Audit.WriteReport(os.Stdout)
func WithCoverage(cv *Cover) Option {
	return optionFunc(func(c *soc.Config) { c.Cover = cv })
}

// Scale selects a platform sizing preset (RAM and TLM quantum).
type Scale int

// Platform sizing presets.
const (
	// ScaleSmall: 1 MiB RAM, 1024-instruction quantum — unit-test sized.
	ScaleSmall Scale = iota
	// ScaleMedium: the defaults (8 MiB RAM, 4096-instruction quantum).
	ScaleMedium
	// ScaleLarge: 32 MiB RAM, 16384-instruction quantum — long benchmarks.
	ScaleLarge
)

// WithScale applies a sizing preset. Individual WithRAMSize / WithQuantum
// options applied after it still override the preset.
func WithScale(s Scale) Option {
	return optionFunc(func(c *soc.Config) {
		switch s {
		case ScaleSmall:
			c.RAMSize, c.Quantum = 1<<20, 1024
		case ScaleLarge:
			c.RAMSize, c.Quantum = 32<<20, 16384
		default:
			c.RAMSize, c.Quantum = soc.DefaultRAMSize, soc.DefaultQuantum
		}
	})
}

// WithRAMSize overrides the RAM size in bytes.
func WithRAMSize(bytes uint32) Option {
	return optionFunc(func(c *soc.Config) { c.RAMSize = bytes })
}

// WithQuantum overrides the TLM quantum (instructions between kernel
// synchronizations).
func WithQuantum(instructions uint64) Option {
	return optionFunc(func(c *soc.Config) { c.Quantum = instructions })
}

// WithInstrTime overrides the modeled per-instruction time.
func WithInstrTime(t Time) Option {
	return optionFunc(func(c *soc.Config) { c.InstrTime = t })
}

// WithTLMMemory routes every VP+ data access through full TLM transactions
// instead of the direct memory path (the paper's memory organization).
func WithTLMMemory() Option {
	return optionFunc(func(c *soc.Config) { c.TaintMemViaTLM = true })
}

// WithoutDecodeCache disables the predecoded-instruction cache (ablation).
func WithoutDecodeCache() Option {
	return optionFunc(func(c *soc.Config) { c.NoDecodeCache = true })
}

// WithDecoupledTaint runs the VP+ taint monitor decoupled: the ISS front end
// retires instructions at near-VP speed and a parallel monitor goroutine
// replays tag propagation from a lock-free retire-record ring, stalling the
// ISS only at clearance and sync points. Detection verdicts, violations and
// final tag state are identical to the (default) inline mode. No effect on
// the baseline VP.
func WithDecoupledTaint() Option {
	return optionFunc(func(c *soc.Config) { c.DecoupledTaint = true })
}

// WithFlightRecorder attaches a specific flight recorder — typically to
// pick a non-default window size:
//
//	pl, err := vpdift.NewPlatform(
//	    vpdift.WithPolicy(pol),
//	    vpdift.WithFlightRecorder(vpdift.NewFlightRecorder(1<<16)),
//	)
//
// Every platform carries a default 4096-entry recorder even without this
// option; use WithoutFlightRecorder to opt out entirely.
func WithFlightRecorder(r *FlightRecorder) Option {
	return optionFunc(func(c *soc.Config) { c.Flight, c.FlightOff = r, false })
}

// WithoutFlightRecorder disables the always-on flight recorder. The hot
// loops then skip capture entirely; LastForensics and Snapshot return nil.
func WithoutFlightRecorder() Option {
	return optionFunc(func(c *soc.Config) { c.Flight, c.FlightOff = nil, true })
}

// WithTelemetry attaches a live-metrics sampler: every Every of simulated
// time it snapshots the platform's merged metrics into its ring. The sampler
// rides a kernel daemon thread, so it never extends a run. A typical setup:
//
//	smp := vpdift.NewSampler(vpdift.SamplerOptions{Every: vpdift.MS})
//	pl, err := vpdift.NewPlatform(vpdift.WithPolicy(pol), vpdift.WithTelemetry(smp))
//	...
//	smp.WriteJSONL(f)
func WithTelemetry(s *Sampler) Option {
	return optionFunc(func(c *soc.Config) { c.Telemetry = s })
}

// Config parameterizes platform construction as one struct literal.
//
// Deprecated: pass functional options to NewPlatform instead —
// NewPlatform(WithPolicy(pol), WithObserver(o)). Config implements Option,
// so existing NewPlatform(Config{...}) calls keep compiling; note that it
// assigns every field and therefore overrides any option applied before it.
type Config struct {
	// Policy enables DIFT (VP+) when non-nil.
	Policy *Policy
	// RAMSize in bytes; 0 means the default (8 MiB).
	RAMSize uint32
	// Quantum in instructions; 0 means the default (4096).
	Quantum uint64
	// InstrTime per instruction; 0 means the default (10 ns).
	InstrTime Time
	// TaintMemViaTLM routes VP+ data accesses through full TLM transactions.
	TaintMemViaTLM bool
	// DecoupledTaint runs the VP+ taint monitor on a parallel goroutine.
	DecoupledTaint bool
	// NoDecodeCache disables the predecoded-instruction cache.
	NoDecodeCache bool
	// Obs attaches an observability recorder.
	Obs *Observer
	// Trace attaches the simulation-side observability layer.
	Trace *Trace
	// Cover attaches the coverage-observability layer.
	Cover *Cover
	// Telemetry attaches a live-metrics sampler.
	Telemetry *Sampler
}

func (cfg Config) applyOption(c *soc.Config) {
	*c = soc.Config{
		Policy:         cfg.Policy,
		RAMSize:        cfg.RAMSize,
		Quantum:        cfg.Quantum,
		InstrTime:      cfg.InstrTime,
		TaintMemViaTLM: cfg.TaintMemViaTLM,
		DecoupledTaint: cfg.DecoupledTaint,
		NoDecodeCache:  cfg.NoDecodeCache,
		Obs:            cfg.Obs,
		Trace:          cfg.Trace,
		Cover:          cfg.Cover,
		Telemetry:      cfg.Telemetry,
	}
}

// NewPlatform builds a virtual prototype. With no WithPolicy option it is
// the plain baseline VP; with one it is the DIFT-enabled VP+.
func NewPlatform(opts ...Option) (*Platform, error) {
	var cfg soc.Config
	for _, o := range opts {
		o.applyOption(&cfg)
	}
	pl, err := soc.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Platform{pl}, nil
}

// Result is what a simulation run produced: exit status, simulation gauges,
// a full metrics snapshot, and — when the run was stopped by a policy
// violation — the violation itself, carrying its provenance chain if an
// observer was attached.
type Result struct {
	// Exited reports a guest power-off (SysCtrl), with its exit code.
	Exited   bool
	ExitCode uint32
	// Instret is the number of instructions retired.
	Instret uint64
	// SimTime is the simulated time reached.
	SimTime Time
	// Metrics is the platform's counter snapshot (sim.* gauges always;
	// obs.*, checks.*, bus.*, violations.* when an observer is attached).
	Metrics map[string]uint64
	// Violation is non-nil when the run stopped on a policy violation.
	Violation *Violation
	// Forensics is the flight recorder's post-mortem bundle, non-nil when
	// the run stopped on a violation or fault and the recorder is enabled
	// (it is by default). On clean runs call Platform.Snapshot instead.
	Forensics *ForensicBundle
}

// Run advances the simulation until the guest exits, a violation or error
// stops it, or the horizon passes. The returned Result is always non-nil;
// the error (when non-nil) wraps any *Violation so errors.As works:
//
//	res, err := pl.Run(vpdift.Forever)
//	var v *vpdift.Violation
//	if errors.As(err, &v) { fmt.Print(v.ProvenanceReport(nil)) }
func (pl *Platform) Run(horizon Time) (*Result, error) {
	err := pl.Platform.Run(horizon)
	res := &Result{
		Instret: pl.Instret(),
		SimTime: pl.Sim.Now(),
		Metrics: pl.MetricsSnapshot(),
	}
	res.Exited, res.ExitCode = pl.Exited()
	if err != nil {
		res.Forensics = pl.LastForensics()
		var v *Violation
		if errors.As(err, &v) {
			res.Violation = v
			err = fmt.Errorf("vpdift: run stopped: %w", v)
		}
	}
	return res, err
}
