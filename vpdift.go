// Package vpdift is a virtual-prototype-based dynamic information flow
// tracking (DIFT) engine for embedded RISC-V binaries — a from-scratch Go
// reproduction of "Dynamic Information Flow Tracking for Embedded Binaries
// using SystemC-based Virtual Prototypes" (DAC 2020).
//
// The package is a thin facade over the implementation packages:
//
//   - a deterministic discrete-event simulation kernel (the SystemC
//     substitute) and a TLM-style bus whose payloads carry tainted bytes;
//   - an RV32IM instruction-set simulator in two flavours: the plain
//     baseline core ("VP") and the tag-propagating DIFT core ("VP+") with
//     the paper's execution-clearance checks;
//   - a peripheral set (UART, sensor, CLINT, interrupt controller, DMA,
//     CAN, AES with declassification, SysCtrl);
//   - an RV32IM assembler so guest binaries can be built in-process;
//   - security policies: IFP lattices, classification, clearance,
//     declassification.
//
// # Quick start
//
//	img, err := vpdift.BuildProgram(`
//	main:
//	    la a0, msg
//	    tail uart_puts
//	    .data
//	msg: .asciz "hello\n"
//	`)
//	...
//	lat := vpdift.IFP1()
//	pol := vpdift.NewPolicy(lat, lat.MustTag(vpdift.ClassLC)).
//	    WithOutput("uart0.tx", lat.MustTag(vpdift.ClassLC))
//	pl, err := vpdift.NewPlatform(vpdift.Config{Policy: pol})
//	...
//	err = pl.Load(img)
//	err = pl.Run(vpdift.Forever) // *Violation on policy violations
package vpdift

import (
	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/periph"
	"vpdift/internal/rv32"
	"vpdift/internal/soc"
	"vpdift/internal/tlm"
)

// Security-policy types.
type (
	// Tag identifies a security class within a Lattice.
	Tag = core.Tag
	// Lattice is an information flow policy: a join-semilattice of
	// security classes with LUB and AllowedFlow.
	Lattice = core.Lattice
	// Policy bundles an IFP with classification and clearance assignments.
	Policy = core.Policy
	// RegionRule attaches classification/store-clearance to address ranges.
	RegionRule = core.RegionRule
	// ExecClearance configures the CPU's execution-clearance checks.
	ExecClearance = core.ExecClearance
	// Violation is the runtime error raised on policy violations.
	Violation = core.Violation
	// ViolationKind classifies where a violation was detected.
	ViolationKind = core.ViolationKind
	// Word is a tainted 32-bit value.
	Word = core.Word
	// TByte is a tainted byte.
	TByte = core.TByte
)

// Violation kinds.
const (
	KindOutputClearance  = core.KindOutputClearance
	KindFetchClearance   = core.KindFetchClearance
	KindBranchClearance  = core.KindBranchClearance
	KindMemAddrClearance = core.KindMemAddrClearance
	KindStoreClearance   = core.KindStoreClearance
)

// Standard security-class names used by the IFP constructors.
const (
	ClassLC = core.ClassLC
	ClassHC = core.ClassHC
	ClassHI = core.ClassHI
	ClassLI = core.ClassLI
)

// NewLattice builds an IFP from classes and allowed-flow edges.
func NewLattice(classes []string, edges [][2]string) (*Lattice, error) {
	return core.NewLattice(classes, edges)
}

// IFP1 is the confidentiality lattice of the paper's Fig. 1 (LC -> HC).
func IFP1() *Lattice { return core.IFP1() }

// IFP2 is the integrity lattice of Fig. 1 (HI -> LI).
func IFP2() *Lattice { return core.IFP2() }

// IFP3 is the combined confidentiality+integrity product lattice of Fig. 1.
func IFP3() *Lattice { return core.IFP3() }

// Product combines two IFPs into their product lattice.
func Product(a, b *Lattice) (*Lattice, error) { return core.Product(a, b) }

// PerByteKeyIntegrity builds the per-key-byte integrity lattice used by the
// immobilizer case study's final fix.
func PerByteKeyIntegrity(keyBytes int) (*Lattice, error) {
	return core.PerByteKeyIntegrity(keyBytes)
}

// NewPolicy creates an empty policy over a lattice with a default class.
func NewPolicy(l *Lattice, defaultClass Tag) *Policy { return core.NewPolicy(l, defaultClass) }

// Simulation time.
type Time = kernel.Time

// Time units and the unbounded horizon.
const (
	NS      = kernel.NS
	US      = kernel.US
	MS      = kernel.MS
	S       = kernel.S
	Forever = kernel.Forever
)

// Toolchain types.
type (
	// Image is an assembled guest program.
	Image = asm.Image
	// AsmOptions configures assembly.
	AsmOptions = asm.Options
)

// Assemble translates raw RV32IM assembly into a loadable image.
func Assemble(src string, opts AsmOptions) (*Image, error) { return asm.Assemble(src, opts) }

// BuildProgram assembles a guest program body against the bundled runtime
// (crt0, UART console I/O, setjmp/longjmp, rand, the platform's MMIO
// equates). The body must define main.
func BuildProgram(body string) (*Image, error) { return guest.Program(body) }

// Platform types.
type (
	// Platform is a constructed virtual prototype (VP or VP+).
	Platform = soc.Platform
	// Config parameterizes platform construction; a nil Policy selects the
	// untracked baseline VP.
	Config = soc.Config
	// UART is the console peripheral.
	UART = periph.UART
	// Sensor is the paper's Fig. 4 sensor peripheral.
	Sensor = periph.Sensor
	// CAN is the CAN-bus endpoint.
	CAN = periph.CAN
	// CANFrame is a CAN frame with tainted payload bytes.
	CANFrame = periph.CANFrame
	// AES is the declassifying crypto engine.
	AES = periph.AES
	// DMA is the tag-preserving copy engine.
	DMA = periph.DMA
	// Bus is the TLM interconnect.
	Bus = tlm.Bus
	// Core is the baseline RV32IM ISS.
	Core = rv32.Core
	// TaintCore is the DIFT-enabled RV32IM ISS.
	TaintCore = rv32.TaintCore
)

// Platform memory map.
const (
	RAMBase     = soc.RAMBase
	UARTBase    = soc.UARTBase
	SensorBase  = soc.SensorBase
	CANBase     = soc.CANBase
	AESBase     = soc.AESBase
	DMABase     = soc.DMABase
	CLINTBase   = soc.CLINTBase
	IntCBase    = soc.IntCBase
	SysCtrlBase = soc.SysCtrlBase
)

// NewPlatform builds a virtual prototype. A nil cfg.Policy yields the plain
// baseline VP; a policy yields the DIFT-enabled VP+.
func NewPlatform(cfg Config) (*Platform, error) { return soc.New(cfg) }
