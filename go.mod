module vpdift

go 1.23
