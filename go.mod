module vpdift

go 1.22
