// Immobilizer: a compact version of the paper's case study built entirely
// on the public API. A guest holds a secret key, encrypts a CAN challenge
// on the AES peripheral (which declassifies the ciphertext), and answers on
// the CAN bus. The engine-side code verifies the response, then tries to
// read the key directly — which the policy stops.
package main

import (
	"crypto/aes"
	"errors"
	"fmt"
	"log"

	"vpdift"
)

const firmware = `
main:
	# wait for the challenge frame
1:	li t0, CAN_BASE
	lw t1, CAN_STATUS(t0)
	andi t1, t1, 1
	beqz t1, 1b
	# AES_IN <- challenge (8 bytes) || zeros
	li t1, AES_BASE
	li t2, 0
2:	add t3, t0, t2
	lbu t4, CAN_RX_DATA(t3)
	add t3, t1, t2
	sb t4, AES_IN(t3)
	addi t2, t2, 1
	li t3, 8
	blt t2, t3, 2b
3:	add t3, t1, t2
	sb x0, AES_IN(t3)
	addi t2, t2, 1
	li t3, 16
	blt t2, t3, 3b
	# AES_KEY <- secret key
	la t2, key
	li t3, 0
4:	add t4, t2, t3
	lbu t5, 0(t4)
	add t4, t1, t3
	sb t5, AES_KEY(t4)
	addi t3, t3, 1
	li t4, 16
	blt t3, t4, 4b
	# encrypt
	li t3, 1
	sw t3, AES_CTRL(t1)
	# respond with the first 8 ciphertext bytes
	li t3, 0x101
	sw t3, CAN_TX_ID(t0)
	li t3, 8
	sw t3, CAN_TX_LEN(t0)
	li t2, 0
5:	add t3, t1, t2
	lbu t4, AES_OUT(t3)
	add t3, t0, t2
	sb t4, CAN_TX_DATA(t3)
	addi t2, t2, 1
	li t3, 8
	blt t2, t3, 5b
	li t3, 1
	sw t3, CAN_TX_CTRL(t0)

	# now "debug code" leaks the raw key to the CAN bus
	li t3, 0x1FF
	sw t3, CAN_TX_ID(t0)
	li t3, 8
	sw t3, CAN_TX_LEN(t0)
	la t2, key
	li t3, 0
6:	add t4, t2, t3
	lbu t5, 0(t4)
	add t4, t0, t3
	sb t5, CAN_TX_DATA(t4)
	addi t3, t3, 1
	li t4, 8
	blt t3, t4, 6b
	li t3, 1
	sw t3, CAN_TX_CTRL(t0)
	li a0, 0
	ret

	.data
	.align 2
key:
	.byte 0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6
	.byte 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c
`

func main() {
	img, err := vpdift.BuildProgram(firmware)
	if err != nil {
		log.Fatal(err)
	}

	// IFP-3 policy: key is (HC,HI); CAN is a public (LC,LI) interface; the
	// AES engine admits everything and declassifies to (LC,LI).
	lat := vpdift.IFP3()
	lcLI := lat.MustTag("(LC,LI)")
	hcHI := lat.MustTag("(HC,HI)")
	top, _ := lat.Top()
	key := img.MustSymbol("key")
	pol := vpdift.NewPolicy(lat, lcLI).
		WithRegion(vpdift.RegionRule{
			Name: "key", Start: key, End: key + 16,
			Classify: true, Class: hcHI,
			CheckStore: true, Clearance: hcHI,
		}).
		WithOutput("can0.tx", lcLI).
		WithOutput("aes0.in", top).
		WithInput("can0.rx", lcLI).
		WithInput("aes0.out", lcLI)

	pl, err := vpdift.NewPlatform(vpdift.WithPolicy(pol))
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		log.Fatal(err)
	}

	challenge := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	pl.CAN.Deliver(0x100, challenge)
	_, runErr := pl.Run(vpdift.S)

	// The challenge response made it out before the leak attempt.
	if len(pl.CAN.TxLog) < 1 {
		log.Fatal("no response frame")
	}
	resp := pl.CAN.TxLog[0]
	fmt.Printf("challenge % x\n", challenge)
	fmt.Printf("response  % x (declassified ciphertext)\n", valueBytes(resp))

	// Engine-side verification with the shared key.
	keyBytes := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	blk, _ := aes.NewCipher(keyBytes)
	var pt, ct [16]byte
	copy(pt[:8], challenge)
	blk.Encrypt(ct[:], pt[:])
	for i, b := range valueBytes(resp) {
		if b != ct[i] {
			log.Fatal("engine verification failed")
		}
	}
	fmt.Println("engine verification: OK")

	// The key leak attempt must have been stopped.
	var v *vpdift.Violation
	if !errors.As(runErr, &v) || v.Port != "can0.tx" {
		log.Fatalf("expected a can0.tx violation, got: %v", runErr)
	}
	fmt.Printf("raw key leak DETECTED: %v\n", v)
	if len(pl.CAN.TxLog) != 1 {
		log.Fatal("leak frame must not have been transmitted")
	}
}

func valueBytes(f vpdift.CANFrame) []byte {
	out := make([]byte, len(f.Data))
	for i, b := range f.Data {
		out[i] = b.V
	}
	return out
}
