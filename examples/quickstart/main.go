// Quickstart: assemble a guest program in-process, run it on the DIFT
// virtual prototype, and watch the engine catch a secret leaking to the
// console.
package main

import (
	"errors"
	"fmt"
	"log"

	"vpdift"
)

func main() {
	// A guest program with a benign part and a leaky part: it greets the
	// console, then dumps a secret word.
	img, err := vpdift.BuildProgram(`
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, greeting
	call uart_puts
	la t0, secret      # now leak the secret to the console
	lw a0, 0(t0)
	call uart_puthex
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.data
greeting:
	.asciz "hello from the VP!\n"
	.align 2
secret:
	.word 0xC0FFEE42
`)
	if err != nil {
		log.Fatal(err)
	}

	// Security policy: IFP-1 confidentiality. The secret word is
	// High-Confidentiality, the UART transmitter requires
	// Low-Confidentiality.
	lat := vpdift.IFP1()
	lc := lat.MustTag(vpdift.ClassLC)
	hc := lat.MustTag(vpdift.ClassHC)
	secret := img.MustSymbol("secret")
	pol := vpdift.NewPolicy(lat, lc).
		WithOutput("uart0.tx", lc).
		WithRegion(vpdift.RegionRule{
			Name: "secret", Start: secret, End: secret + 4,
			Classify: true, Class: hc,
		})

	// An observer records how the tag travelled, so the violation below
	// carries a provenance chain instead of just naming the port.
	pl, err := vpdift.NewPlatform(
		vpdift.WithPolicy(pol),
		vpdift.WithObserver(vpdift.NewObserver()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		log.Fatal(err)
	}

	res, runErr := pl.Run(vpdift.Forever)
	fmt.Printf("console output: %q\n", pl.UART.Output())

	var v *vpdift.Violation
	if errors.As(runErr, &v) {
		fmt.Printf("DIFT engine stopped the program: %v\n", v)
		fmt.Println("the greeting got through; the tainted hex dump did not")
		fmt.Printf("how the secret reached the port:\n%s", v.ProvenanceReport(nil))
		fmt.Printf("clearance checks performed: %d\n", res.Metrics["checks.output"])
		return
	}
	log.Fatalf("expected a violation, got: %v", runErr)
}
