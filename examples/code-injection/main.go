// Code-injection: a classic stack smash. The victim copies attacker bytes
// from the UART past the end of a stack buffer, overwriting its saved
// return address with the address of a payload function.
//
// The example first runs without DIFT — the payload executes and exits with
// its marker code — then with the Section VI-B code-injection policy
// (program image High-Integrity, HI instruction-fetch clearance, payload
// and all external input Low-Integrity), which stops the very first fetched
// payload instruction.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"vpdift"
)

const victimSrc = `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	call victim
	li a0, 1               # never reached: the overflow redirects control
	lw ra, 12(sp)
	addi sp, sp, 16
	ret

victim:
	addi sp, sp, -32
	sw ra, 28(sp)          # 16-byte buffer at 0(sp), saved ra at 28(sp)
	mv t2, sp
	li t3, 32              # gets(buffer): reads 32 bytes into 16 bytes
	li t0, UART_BASE
1:	lw t1, UART_RX(t0)
	srli t4, t1, UART_RX_EMPTY_BIT
	bnez t4, 1b
	sb t1, 0(t2)
	addi t2, t2, 1
	addi t3, t3, -1
	bnez t3, 1b
	lw ra, 28(sp)
	addi sp, sp, 32
	ret                    # returns into the payload

	.align 4
payload:
	li a0, 99              # "shellcode": exit with the attacker's marker
	j exit
payload_end:
`

func run(withDIFT bool) error {
	img, err := vpdift.BuildProgram(victimSrc)
	if err != nil {
		return err
	}
	var pol *vpdift.Policy
	if withDIFT {
		lat := vpdift.IFP2()
		hi := lat.MustTag(vpdift.ClassHI)
		li := lat.MustTag(vpdift.ClassLI)
		pol = vpdift.NewPolicy(lat, li).
			WithFetchClearance(hi).
			WithRegion(vpdift.RegionRule{
				Name: "payload", Start: img.MustSymbol("payload"), End: img.MustSymbol("payload_end"),
				Classify: true, Class: li,
			}).
			WithRegion(vpdift.RegionRule{
				Name: "text", Start: img.Base, End: img.Base + uint32(len(img.Text)),
				Classify: true, Class: hi,
			}).
			WithInput("uart0.rx", li)
	}
	pl, err := vpdift.NewPlatform(vpdift.WithPolicy(pol))
	if err != nil {
		return err
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		return err
	}

	// The exploit: 28 filler bytes, then the payload address.
	exploit := make([]byte, 32)
	for i := 0; i < 28; i++ {
		exploit[i] = 'A'
	}
	binary.LittleEndian.PutUint32(exploit[28:], img.MustSymbol("payload"))
	pl.UART.Inject(exploit)

	if _, err := pl.Run(vpdift.S); err != nil {
		return err
	}
	exited, code := pl.Exited()
	fmt.Printf("  guest exited=%v code=%d\n", exited, code)
	if code == 99 {
		fmt.Println("  the injected payload RAN — code injection succeeded")
	}
	return nil
}

func main() {
	fmt.Println("without DIFT:")
	if err := run(false); err != nil {
		log.Fatal(err)
	}

	fmt.Println("with the code-injection policy:")
	err := run(true)
	var v *vpdift.Violation
	if !errors.As(err, &v) || v.Kind != vpdift.KindFetchClearance {
		log.Fatalf("expected a fetch-clearance violation, got: %v", err)
	}
	fmt.Printf("  DETECTED at the payload's first instruction: %v\n", v)
}
