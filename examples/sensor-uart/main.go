// Sensor-to-UART: the paper's Fig. 4 scenario. A sensor peripheral
// periodically fills a memory-mapped frame with data classified by its
// data_tag register and raises an interrupt; the guest copies each frame to
// the console.
//
// The example runs the flow twice: first with the sensor configured to
// produce confidential data (the copy trips the UART clearance), then with
// public data (the copy streams through).
package main

import (
	"errors"
	"fmt"
	"log"

	"vpdift"
)

const guestSrc = `
main:
	la t0, trap_handler
	csrw mtvec, t0
	li t0, INTC_BASE
	li t1, 1 << IRQ_SENSOR
	sw t1, INTC_ENABLE(t0)
	li t1, 0x800           # MEIE
	csrw mie, t1
	csrsi mstatus, 8       # MIE
	la s0, frames
1:	lw t1, 0(s0)
	li t2, 4
	blt t1, t2, 1b
	li a0, 0
	j exit

trap_handler:
	li t0, INTC_BASE
	lw t1, INTC_CLAIM(t0)
	li t0, SENSOR_BASE
	li t1, UART_BASE
	li t2, 0
2:	add t3, t0, t2
	lbu t4, 0(t3)
	sw t4, UART_TX(t1)     # confidential frames violate here
	addi t2, t2, 1
	li t3, 64
	blt t2, t3, 2b
	la t0, frames
	lw t1, 0(t0)
	addi t1, t1, 1
	sw t1, 0(t0)
	mret

	.data
	.align 2
frames:
	.word 0
`

func run(confidential bool) error {
	img, err := vpdift.BuildProgram(guestSrc)
	if err != nil {
		return err
	}
	lat := vpdift.IFP1()
	lc := lat.MustTag(vpdift.ClassLC)
	hc := lat.MustTag(vpdift.ClassHC)
	pol := vpdift.NewPolicy(lat, lc).WithOutput("uart0.tx", lc)
	if confidential {
		pol.WithInput("sensor0.data", hc)
	}
	pl, err := vpdift.NewPlatform(vpdift.WithPolicy(pol))
	if err != nil {
		return err
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		return err
	}
	_, runErr := pl.Run(500 * vpdift.MS)
	fmt.Printf("  %d sensor frames generated, %d bytes reached the console\n",
		pl.Sensor.Frames(), len(pl.UART.Output()))
	return runErr
}

func main() {
	fmt.Println("sensor classified High-Confidentiality:")
	err := run(true)
	var v *vpdift.Violation
	if !errors.As(err, &v) {
		log.Fatalf("expected a violation, got: %v", err)
	}
	fmt.Printf("  DETECTED: %v\n", v)

	fmt.Println("sensor classified Low-Confidentiality:")
	if err := run(false); err != nil {
		log.Fatalf("public flow must pass, got: %v", err)
	}
	fmt.Println("  copied cleanly — same binary, different classification")
}
