// Benchmarks regenerating the paper's evaluation:
//
//   - BenchmarkTable2VP / BenchmarkTable2VPPlus: one sub-benchmark per
//     Table II row, measuring guest MIPS on the baseline VP and the DIFT
//     VP+ platform. The per-row VP+/VP time ratio is the paper's overhead
//     column (cmd/perf prints the assembled table).
//   - BenchmarkTable1WKSuite: the full Wilander–Kamkar detection run behind
//     Table I.
//   - BenchmarkAblation*: design-choice ablations from DESIGN.md §5 —
//     tag propagation without any clearance checks (isolating pure taint
//     cost), the DMI-style direct memory path versus plain bus access, and
//     the predecoded-instruction cache on versus off.
//   - BenchmarkLattice*: the O(1) LUB/AllowedFlow operations underlying
//     Fig. 1 (they execute several times per simulated instruction).
package vpdift_test

import (
	"testing"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/perf"
	"vpdift/internal/soc"
	"vpdift/internal/wk"
)

// benchWorkload runs one Table II workload repeatedly on one platform
// flavour, reporting simulated MIPS.
func benchWorkload(b *testing.B, w perf.Workload, dift bool) {
	benchWorkloadOpts(b, w, perf.Options{DIFT: dift})
}

// benchWorkloadOpts is benchWorkload with the full option set exposed.
func benchWorkloadOpts(b *testing.B, w perf.Workload, o perf.Options) {
	b.Helper()
	var instr uint64
	var wall float64
	for i := 0; i < b.N; i++ {
		m, err := perf.RunOnceOpts(w, o)
		if err != nil {
			b.Fatal(err)
		}
		instr += m.Instr
		wall += m.Wall.Seconds()
	}
	if wall > 0 {
		b.ReportMetric(float64(instr)/1e6/wall, "MIPS")
	}
	b.ReportMetric(float64(instr)/float64(b.N), "instructions/op")
}

func BenchmarkTable2VP(b *testing.B) {
	for _, w := range perf.Workloads(perf.ScaleSmall) {
		b.Run(w.Name, func(b *testing.B) { benchWorkload(b, w, false) })
	}
}

func BenchmarkTable2VPPlus(b *testing.B) {
	for _, w := range perf.Workloads(perf.ScaleSmall) {
		b.Run(w.Name, func(b *testing.B) { benchWorkload(b, w, true) })
	}
}

func BenchmarkTable1WKSuite(b *testing.B) {
	suite := wk.Suite()
	for i := 0; i < b.N; i++ {
		for j := range suite {
			a := &suite[j]
			if !a.Applicable() {
				continue
			}
			res, err := wk.Run(a, true)
			if err != nil {
				b.Fatal(err)
			}
			if res != wk.Detected {
				b.Fatalf("attack %d: %v", a.Num, res)
			}
		}
	}
}

// BenchmarkAblationTagPropagationOnly runs the qsort workload on a
// TaintCore whose policy enables no checks at all: the cost difference to
// BenchmarkTable2VP/qsort is pure tag storage+propagation, and the
// difference to BenchmarkTable2VPPlus/qsort is the price of the clearance
// checks.
func BenchmarkAblationTagPropagationOnly(b *testing.B) {
	w := perf.Workloads(perf.ScaleSmall)[0]
	w.Policy = func(img *asm.Image) *core.Policy {
		l := core.IFP2()
		return core.NewPolicy(l, l.MustTag(core.ClassLI))
	}
	benchWorkload(b, w, true)
}

// memBench builds a load/store-heavy guest touching either RAM (DMI-style
// direct path) or the sensor frame (TLM transaction path).
func memBench(b *testing.B, base string) {
	b.Helper()
	img := guest.MustProgram(`
main:
	li s0, ` + base + `
	li s1, 200000
1:	lw t0, 0(s0)
	lw t1, 4(s0)
	add t0, t0, t1
	sw t0, 8(s0)
	addi s1, s1, -1
	bnez s1, 1b
	li a0, 0
	ret
`)
	for i := 0; i < b.N; i++ {
		pl := soc.MustNew(soc.Config{})
		if err := pl.Load(img); err != nil {
			b.Fatal(err)
		}
		if err := pl.Run(kernel.Forever); err != nil {
			b.Fatal(err)
		}
		if exited, code := pl.Exited(); !exited || code != 0 {
			b.Fatalf("exited=%v code=%d", exited, code)
		}
		pl.Shutdown()
	}
}

// BenchmarkAblationMemoryDMIPath exercises the direct RAM fast path.
func BenchmarkAblationMemoryDMIPath(b *testing.B) {
	memBench(b, "RAM_BASE + 0x100000")
}

// BenchmarkAblationMemoryBusPath exercises the same access pattern through
// full TLM transactions (sensor frame registers).
func BenchmarkAblationMemoryBusPath(b *testing.B) {
	memBench(b, "SENSOR_BASE")
}

func BenchmarkLatticeLUB(b *testing.B) {
	l := core.IFP3()
	// The accumulator feeds back unmasked (LUB only returns valid tags), so
	// the loop body is a pure LUB chain.
	var t core.Tag
	for i := 0; i < b.N; i++ {
		t = l.LUB(core.Tag(i&3), t)
	}
	_ = t
}

func BenchmarkLatticeAllowedFlow(b *testing.B) {
	l := core.IFP3()
	var ok bool
	for i := 0; i < b.N; i++ {
		ok = l.AllowedFlow(core.Tag(i&3), core.Tag((i>>2)&3))
	}
	_ = ok
}

// BenchmarkAssembler measures in-process toolchain speed on the largest
// guest (the generated SHA-512).
func BenchmarkAssembler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		img := guest.SHA512(1024).Image
		if img.TextWords() == 0 {
			b.Fatal("empty image")
		}
	}
}

// BenchmarkAblationDecodeCacheOffVP runs the qsort workload on the baseline
// VP with the predecoded-instruction cache disabled: the gap to
// BenchmarkTable2VP/qsort is the cache's contribution to interpreter speed.
func BenchmarkAblationDecodeCacheOffVP(b *testing.B) {
	w := perf.Workloads(perf.ScaleSmall)[0]
	benchWorkloadOpts(b, w, perf.Options{NoDecodeCache: true})
}

// BenchmarkAblationDecodeCacheOffVPPlus is the VP+ counterpart; the gap to
// BenchmarkTable2VPPlus/qsort additionally includes the cached fetch-tag
// summary (on a hit, the per-fetch 3×LUB + AllowedFlow of the code-injection
// policy collapses to one comparison).
func BenchmarkAblationDecodeCacheOffVPPlus(b *testing.B) {
	w := perf.Workloads(perf.ScaleSmall)[0]
	benchWorkloadOpts(b, w, perf.Options{DIFT: true, NoDecodeCache: true})
}

// BenchmarkAblationTaintMemViaTLM runs the qsort workload on a VP+ whose
// data accesses all go through TLM transactions (the paper's VP+ memory
// interface) — compare with BenchmarkTable2VPPlus/qsort (direct path) and
// BenchmarkTable2VP/qsort (baseline).
func BenchmarkAblationTaintMemViaTLM(b *testing.B) {
	w := perf.Workloads(perf.ScaleSmall)[0]
	var instr uint64
	var wall float64
	for i := 0; i < b.N; i++ {
		m, err := perf.RunOnceCfg(w, true, true)
		if err != nil {
			b.Fatal(err)
		}
		instr += m.Instr
		wall += m.Wall.Seconds()
	}
	if wall > 0 {
		b.ReportMetric(float64(instr)/1e6/wall, "MIPS")
	}
}
